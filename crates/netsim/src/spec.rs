//! Cluster and link specifications.
//!
//! Defaults model the paper's testbed: two nodes, each with four NVIDIA
//! GH200 superchips. Between each GPU pair on a node there are 6 NVLink-4
//! links (150 GB/s unidirectional); each Grace–Hopper pair is joined by
//! NVLink-C2C (450 GB/s per direction); each node has four ConnectX-7
//! 400 Gbit NICs (50 GB/s each).
//!
//! Beyond the uniform testbed, specs can be **ragged** (per-node GPU/NIC
//! counts via [`ClusterSpec::node_gpus`]/[`ClusterSpec::node_nics`]) and
//! **oversubscribed** ([`ClusterSpec::ranks_per_gpu`] ranks time-sharing
//! each GPU). The `--topology` grammar parsed by [`ClusterSpec::parse`]
//! exposes both to the bench binaries.

/// Bandwidth/latency description of one link class.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkSpec {
    /// Human-readable class name (diagnostics).
    pub name: &'static str,
    /// Unidirectional bandwidth in GB/s (1e9 bytes per second).
    pub bandwidth_gbps: f64,
    /// One-way latency in microseconds for this hop.
    pub latency_us: f64,
}

impl LinkSpec {
    /// Serialization time of `bytes` on this link, in microseconds.
    pub fn serialize_us(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.bandwidth_gbps * 1e3)
    }
}

/// Whole-cluster shape and link classes.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Number of nodes (ignored when [`ClusterSpec::node_gpus`] is set —
    /// the per-node list then carries the count).
    pub nodes: u16,
    /// GPUs per node for uniform shapes.
    pub gpus_per_node: u8,
    /// NICs per node for uniform shapes (GPU *i* uses NIC
    /// *i* % the node's NIC count).
    pub nics_per_node: u8,
    /// Ragged override: GPUs on each node. Empty = uniform
    /// (`nodes` × `gpus_per_node`); non-empty, its length is the node
    /// count.
    pub node_gpus: Vec<u8>,
    /// Ragged override: NICs on each node. Empty = every node carries
    /// `nics_per_node`; non-empty, must align with the node count.
    pub node_nics: Vec<u8>,
    /// Ranks sharing each GPU (oversubscription). 0 and 1 both mean the
    /// classic one-rank-per-GPU deployment.
    pub ranks_per_gpu: u8,
    /// GPU↔GPU intra-node links (per ordered pair).
    pub nvlink: LinkSpec,
    /// CPU↔GPU NVLink-C2C (per direction, per superchip).
    pub c2c: LinkSpec,
    /// NIC uplink/downlink to the InfiniBand switch.
    pub ib: LinkSpec,
    /// Host-memory copy pseudo-link for same-CPU transfers.
    pub host_mem: LinkSpec,
}

impl ClusterSpec {
    /// The paper's GH200 testbed with `nodes` nodes (the paper uses 1 and 2).
    pub fn gh200(nodes: u16) -> Self {
        ClusterSpec {
            nodes,
            gpus_per_node: 4,
            nics_per_node: 4,
            node_gpus: Vec::new(),
            node_nics: Vec::new(),
            ranks_per_gpu: 1,
            nvlink: LinkSpec { name: "nvlink4x6", bandwidth_gbps: 150.0, latency_us: 1.9 },
            c2c: LinkSpec { name: "nvlink-c2c", bandwidth_gbps: 450.0, latency_us: 0.6 },
            ib: LinkSpec { name: "ib-cx7", bandwidth_gbps: 50.0, latency_us: 1.75 },
            host_mem: LinkSpec { name: "lpddr5x", bandwidth_gbps: 500.0, latency_us: 0.5 },
        }
    }

    /// GH200 link classes over a ragged shape: `node_gpus[v]` GPUs and
    /// `node_nics[v]` NICs on node `v`, `ranks_per_gpu` ranks per GPU.
    /// Pass an empty `node_nics` to give every node one NIC per GPU.
    pub fn gh200_ragged(node_gpus: &[u8], node_nics: &[u8], ranks_per_gpu: u8) -> Self {
        let nics =
            if node_nics.is_empty() { node_gpus.to_vec() } else { node_nics.to_vec() };
        ClusterSpec {
            nodes: node_gpus.len() as u16,
            node_gpus: node_gpus.to_vec(),
            node_nics: nics,
            ranks_per_gpu: ranks_per_gpu.max(1),
            ..ClusterSpec::gh200(node_gpus.len() as u16)
        }
    }

    /// Parse the `--topology` spec grammar onto GH200 link classes:
    ///
    /// - uniform: `NxG` or `NxGxK` (nodes × GPUs/node × NICs/node,
    ///   K defaulting to G), e.g. `2x4`, `4x4x2`;
    /// - ragged: comma-separated per-node GPU counts, optionally followed
    ///   by `:` and per-node NIC counts, e.g. `4,2,4,1` or `4,2,4,1:2,1,2,1`;
    /// - either form takes an `@O` oversubscription suffix (O ranks per
    ///   GPU), e.g. `2x4@2`, `4,2,4,1@2`.
    ///
    /// Shape *validation* (empty nodes, rail mismatches, overflow) is the
    /// topology's job; this only rejects strings the grammar cannot read.
    pub fn parse(spec: &str) -> Result<ClusterSpec, String> {
        let spec = spec.trim();
        let (shape, over) = match spec.split_once('@') {
            Some((s, o)) => {
                let o: u8 = o
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad oversubscription factor in '{spec}'"))?;
                (s.trim(), o)
            }
            None => (spec, 1),
        };
        if shape.is_empty() {
            return Err("empty topology spec".to_string());
        }
        let mut cluster = if shape.contains(',') || shape.contains(':') {
            let (gpus_s, nics_s) = match shape.split_once(':') {
                Some((g, k)) => (g, Some(k)),
                None => (shape, None),
            };
            let parse_list = |s: &str| -> Result<Vec<u8>, String> {
                s.split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<u8>()
                            .map_err(|_| format!("bad per-node count '{t}' in '{spec}'"))
                    })
                    .collect()
            };
            let gpus = parse_list(gpus_s)?;
            let nics = match nics_s {
                Some(k) => parse_list(k)?,
                None => Vec::new(),
            };
            ClusterSpec::gh200_ragged(&gpus, &nics, 1)
        } else {
            let parts: Vec<&str> = shape.split('x').collect();
            if parts.len() < 2 || parts.len() > 3 {
                return Err(format!(
                    "topology '{spec}' is neither NxG[xK] nor a per-node list"
                ));
            }
            let nodes: u16 =
                parts[0].trim().parse().map_err(|_| format!("bad node count in '{spec}'"))?;
            let gpus: u8 =
                parts[1].trim().parse().map_err(|_| format!("bad GPU count in '{spec}'"))?;
            let nics: u8 = match parts.get(2) {
                Some(t) => t.trim().parse().map_err(|_| format!("bad NIC count in '{spec}'"))?,
                None => gpus,
            };
            ClusterSpec { nodes, gpus_per_node: gpus, nics_per_node: nics, ..ClusterSpec::gh200(nodes) }
        };
        cluster.ranks_per_gpu = over.max(1);
        Ok(cluster)
    }

    /// Render the shape back into the `--topology` grammar
    /// [`ClusterSpec::parse`] reads — `NxGxK[@O]` for uniform shapes,
    /// `G1,…:K1,…[@O]` for ragged ones — so reports and failure artifacts
    /// carry a spec that replays verbatim.
    pub fn render(&self) -> String {
        let mut out = if self.node_gpus.is_empty() {
            format!("{}x{}x{}", self.nodes, self.gpus_per_node, self.nics_per_node)
        } else {
            let gpus: Vec<String> = self.node_gpus.iter().map(|g| g.to_string()).collect();
            let nics: Vec<String> = self.node_nics.iter().map(|k| k.to_string()).collect();
            if nics.is_empty() {
                gpus.join(",")
            } else {
                format!("{}:{}", gpus.join(","), nics.join(","))
            }
        };
        if self.ranks_per_gpu > 1 {
            out.push_str(&format!("@{}", self.ranks_per_gpu));
        }
        out
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> u32 {
        if self.node_gpus.is_empty() {
            self.nodes as u32 * self.gpus_per_node as u32
        } else {
            self.node_gpus.iter().map(|&g| g as u32).sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gh200_defaults() {
        let s = ClusterSpec::gh200(2);
        assert_eq!(s.total_gpus(), 8);
        assert_eq!(s.nvlink.bandwidth_gbps, 150.0);
        assert_eq!(s.ib.bandwidth_gbps, 50.0);
    }

    #[test]
    fn serialize_time() {
        let s = ClusterSpec::gh200(1);
        // 150 MB over 150 GB/s = 1 ms = 1000 µs.
        let us = s.nvlink.serialize_us(150_000_000);
        assert!((us - 1000.0).abs() < 1e-6);
        assert_eq!(s.nvlink.serialize_us(0), 0.0);
    }

    #[test]
    fn ragged_constructor_shapes() {
        let s = ClusterSpec::gh200_ragged(&[4, 2, 4, 1], &[2, 1, 2, 1], 2);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.total_gpus(), 11);
        assert_eq!(s.ranks_per_gpu, 2);
        // Empty NIC list: one NIC per GPU on every node.
        let s = ClusterSpec::gh200_ragged(&[4, 2], &[], 1);
        assert_eq!(s.node_nics, vec![4, 2]);
    }

    #[test]
    fn topology_grammar_parses() {
        let s = ClusterSpec::parse("2x4").expect("uniform");
        assert_eq!((s.nodes, s.gpus_per_node, s.nics_per_node, s.ranks_per_gpu), (2, 4, 4, 1));
        let s = ClusterSpec::parse("4x4x2@2").expect("uniform with nics and oversub");
        assert_eq!((s.nodes, s.gpus_per_node, s.nics_per_node, s.ranks_per_gpu), (4, 4, 2, 2));
        let s = ClusterSpec::parse("4,2,4,1:2,1,2,1@2").expect("ragged");
        assert_eq!(s.node_gpus, vec![4, 2, 4, 1]);
        assert_eq!(s.node_nics, vec![2, 1, 2, 1]);
        assert_eq!(s.ranks_per_gpu, 2);
        let s = ClusterSpec::parse("4,2").expect("ragged without nics");
        assert_eq!(s.node_nics, vec![4, 2]);
        assert!(ClusterSpec::parse("").is_err());
        assert!(ClusterSpec::parse("2x").is_err());
        assert!(ClusterSpec::parse("axb").is_err());
        assert!(ClusterSpec::parse("2x4@x").is_err());
        assert!(ClusterSpec::parse("4,zz").is_err());
    }

    #[test]
    fn render_round_trips_through_parse() {
        for spec in ["2x4x4", "4x4x2@2", "4,2,4,1:2,1,2,1@2", "4,2:4,2"] {
            let parsed = ClusterSpec::parse(spec).expect("grammar");
            assert_eq!(parsed.render(), spec, "render is the parse inverse");
        }
    }
}
