//! Cluster and link specifications.
//!
//! Defaults model the paper's testbed: two nodes, each with four NVIDIA
//! GH200 superchips. Between each GPU pair on a node there are 6 NVLink-4
//! links (150 GB/s unidirectional); each Grace–Hopper pair is joined by
//! NVLink-C2C (450 GB/s per direction); each node has four ConnectX-7
//! 400 Gbit NICs (50 GB/s each).

/// Bandwidth/latency description of one link class.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkSpec {
    /// Human-readable class name (diagnostics).
    pub name: &'static str,
    /// Unidirectional bandwidth in GB/s (1e9 bytes per second).
    pub bandwidth_gbps: f64,
    /// One-way latency in microseconds for this hop.
    pub latency_us: f64,
}

impl LinkSpec {
    /// Serialization time of `bytes` on this link, in microseconds.
    pub fn serialize_us(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.bandwidth_gbps * 1e3)
    }
}

/// Whole-cluster shape and link classes.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: u16,
    /// GPUs per node.
    pub gpus_per_node: u8,
    /// NICs per node (GPU *i* uses NIC *i* % `nics_per_node`).
    pub nics_per_node: u8,
    /// GPU↔GPU intra-node links (per ordered pair).
    pub nvlink: LinkSpec,
    /// CPU↔GPU NVLink-C2C (per direction, per superchip).
    pub c2c: LinkSpec,
    /// NIC uplink/downlink to the InfiniBand switch.
    pub ib: LinkSpec,
    /// Host-memory copy pseudo-link for same-CPU transfers.
    pub host_mem: LinkSpec,
}

impl ClusterSpec {
    /// The paper's GH200 testbed with `nodes` nodes (the paper uses 1 and 2).
    pub fn gh200(nodes: u16) -> Self {
        ClusterSpec {
            nodes,
            gpus_per_node: 4,
            nics_per_node: 4,
            nvlink: LinkSpec { name: "nvlink4x6", bandwidth_gbps: 150.0, latency_us: 1.9 },
            c2c: LinkSpec { name: "nvlink-c2c", bandwidth_gbps: 450.0, latency_us: 0.6 },
            ib: LinkSpec { name: "ib-cx7", bandwidth_gbps: 50.0, latency_us: 1.75 },
            host_mem: LinkSpec { name: "lpddr5x", bandwidth_gbps: 500.0, latency_us: 0.5 },
        }
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.nodes as u32 * self.gpus_per_node as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gh200_defaults() {
        let s = ClusterSpec::gh200(2);
        assert_eq!(s.total_gpus(), 8);
        assert_eq!(s.nvlink.bandwidth_gbps, 150.0);
        assert_eq!(s.ib.bandwidth_gbps, 50.0);
    }

    #[test]
    fn serialize_time() {
        let s = ClusterSpec::gh200(1);
        // 150 MB over 150 GB/s = 1 ms = 1000 µs.
        let us = s.nvlink.serialize_us(150_000_000);
        assert!((us - 1000.0).abs() < 1e-6);
        assert_eq!(s.nvlink.serialize_us(0), 0.0);
    }
}
