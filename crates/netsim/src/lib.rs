//! # parcomm-net — the cluster interconnect model
//!
//! Substitutes the GH200 testbed's physical fabric (NVLink 4 between GPUs,
//! NVLink-C2C between Grace and Hopper, ConnectX-7 InfiniBand between nodes)
//! with an occupancy-aware link model: every link is a FIFO resource, every
//! transfer serializes on its route and accumulates hop latency. See
//! `DESIGN.md` §2 for calibration values.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fabric;
mod faults;
mod multipath;
mod spec;
mod topology;

pub use fabric::{Fabric, LinkId, Route, StripeArrival, StripedTransfer, Transfer};
pub use faults::{NetError, NetFaultConfig, NicOutage, MAX_RETRANSMITS};
pub use multipath::{MultiPathPlan, PlanError, Stripe, MAX_STRIPES};
pub use spec::{ClusterSpec, LinkSpec};
pub use topology::{RouteClass, Topology, TopologyError};
