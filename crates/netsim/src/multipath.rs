//! Multi-path striping plans: splitting one payload across several
//! physical paths of the cluster.
//!
//! A [`MultiPathPlan`] is computed **from the topology alone** — it names
//! which byte range of the payload rides which path (NIC rail and, where
//! the CommBench-style three-stage pipeline applies, which relay GPUs the
//! stripe hops through on the way to / from that rail). The fabric then
//! executes the plan (`Fabric::try_transfer_planned`), reserving the
//! partition → translate → assemble hops of every stripe and reassembling
//! with deterministic completion accounting.
//!
//! Plan selection degrades gracefully by class:
//!
//! - [`RouteClass::IbCrossNode`]: one stripe per *usable* NIC rail — the
//!   smaller of the two endpoint nodes' NIC counts, so ragged shapes never
//!   aim a stripe at a rail the far node cannot land — starting at the
//!   source GPU's own rail. A stripe whose rail is not the endpoint GPU's
//!   own NIC takes an NVLink *partition* hop to the GPU fronting that rail
//!   (and a mirrored *assemble* hop on the destination node) — the
//!   three-stage pipeline.
//! - [`RouteClass::NvLink`]: up to `1 + (gpus_on(node) - 2)` stripes — the
//!   direct pair plus one relay path through every other GPU on the node.
//! - [`RouteClass::SameGpu`] / [`RouteClass::C2cHost`] /
//!   [`RouteClass::HostLocal`]: exactly one path exists, so any requested
//!   stripe count degrades to a single-path plan.
//!
//! A **single-path plan** (one stripe, no rail pin, no relays) is the
//! explicit statement "route this exactly as an unplanned transfer": the
//! fabric delegates it to the ordinary transfer path, so stripe count 1 is
//! bit-for-bit identical to the pre-striping stack by construction.

use parcomm_gpu::{Location, Unit};

use crate::topology::{RouteClass, Topology};

/// Upper bound on the stripe count a plan will accept. Far above any rail
/// count this fabric models; a request beyond it is a caller bug surfaced
/// as a typed [`PlanError`] rather than silently clamped.
pub const MAX_STRIPES: usize = 64;

/// Why a multi-path plan could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A stripe count of zero: no payload could travel.
    ZeroStripes,
    /// A stripe count above [`MAX_STRIPES`].
    TooManyStripes {
        /// The requested stripe count.
        requested: usize,
        /// The accepted maximum ([`MAX_STRIPES`]).
        max: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ZeroStripes => write!(f, "multi-path plan with zero stripes"),
            PlanError::TooManyStripes { requested, max } => {
                write!(f, "multi-path plan with {requested} stripes (max {max})")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// One stripe of a [`MultiPathPlan`]: a contiguous byte range of the
/// payload and the path it rides.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stripe {
    /// Stripe index within the plan (dense from 0).
    pub index: usize,
    /// Byte offset of this stripe within the payload.
    pub offset: u64,
    /// Stripe length in bytes (> 0 except for the zero-byte payload's
    /// single stripe).
    pub len: u64,
    /// Partition-stage relay: the source-node GPU the stripe hops to over
    /// NVLink before leaving the node (or, intra-node, before reaching the
    /// destination GPU). `None` when the stripe leaves the source GPU
    /// directly.
    pub src_relay: Option<u8>,
    /// Assemble-stage relay on the destination node, mirroring
    /// [`Stripe::src_relay`].
    pub dst_relay: Option<u8>,
    /// The NIC rail the translate stage rides (cross-node plans only).
    /// `None` pins no rail: the fabric routes as it would unplanned.
    pub rail: Option<u8>,
}

/// A computed multi-path striping decision for one payload.
#[derive(Clone, Debug)]
pub struct MultiPathPlan {
    /// Payload source location.
    pub src: Location,
    /// Payload destination location.
    pub dst: Location,
    /// Total payload bytes.
    pub bytes: u64,
    /// Route class between the endpoints (drives path eligibility).
    pub class: RouteClass,
    /// The stripe count the caller asked for (before degradation).
    pub requested: usize,
    /// The stripes, in payload order. Offsets are contiguous and lengths
    /// sum to `bytes` exactly.
    pub stripes: Vec<Stripe>,
}

impl MultiPathPlan {
    /// Compute a plan splitting `bytes` from `src` to `dst` into (up to)
    /// `stripes` stripes over the paths `topo` offers. Degrades the stripe
    /// count gracefully — never errors on an over-ask relative to the
    /// *topology*; only a structurally invalid request (zero or absurd
    /// stripe count) is a typed error.
    pub fn compute(
        topo: &Topology,
        src: Location,
        dst: Location,
        bytes: u64,
        stripes: usize,
    ) -> Result<MultiPathPlan, PlanError> {
        if stripes == 0 {
            return Err(PlanError::ZeroStripes);
        }
        if stripes > MAX_STRIPES {
            return Err(PlanError::TooManyStripes { requested: stripes, max: MAX_STRIPES });
        }
        let class = RouteClass::classify(src, dst);
        let paths = Self::eligible_paths(topo, src, dst, class);
        // Every stripe must carry at least one byte (zero-byte payloads
        // keep one empty stripe so the plan stays well-formed).
        let effective = stripes.min(paths).min(bytes.max(1) as usize).max(1);
        let mut out = Vec::with_capacity(effective);
        if effective == 1 {
            out.push(Stripe {
                index: 0,
                offset: 0,
                len: bytes,
                src_relay: None,
                dst_relay: None,
                rail: None,
            });
        } else {
            let share = bytes.div_ceil(effective as u64);
            let mut offset = 0u64;
            let mut index = 0usize;
            while offset < bytes {
                let len = share.min(bytes - offset);
                let (src_relay, dst_relay, rail) =
                    Self::path_of(topo, src, dst, class, index);
                out.push(Stripe { index, offset, len, src_relay, dst_relay, rail });
                offset += len;
                index += 1;
            }
        }
        Ok(MultiPathPlan { src, dst, bytes, class, requested: stripes, stripes: out })
    }

    /// How many concurrently usable paths the topology offers between the
    /// endpoints.
    fn eligible_paths(topo: &Topology, src: Location, dst: Location, class: RouteClass) -> usize {
        match class {
            // A cross-node stripe needs a rail on *both* ends: ragged
            // shapes clamp to the thinner node's NIC count.
            RouteClass::IbCrossNode => {
                topo.nics_on(src.node).min(topo.nics_on(dst.node)) as usize
            }
            RouteClass::NvLink => {
                // The dedicated pair, plus a two-hop relay path through
                // every GPU on the node that is neither endpoint.
                1 + (topo.gpus_on(src.node) as usize).saturating_sub(2)
            }
            // One substrate, one path: relaying a local copy through a
            // peer cannot add bandwidth, so RouteClass forbids striping.
            RouteClass::SameGpu | RouteClass::C2cHost | RouteClass::HostLocal => 1,
        }
    }

    /// The path assignment of stripe `index` for a genuinely multi-path
    /// plan (`effective > 1`, so only NvLink / IbCrossNode reach here).
    fn path_of(
        topo: &Topology,
        src: Location,
        dst: Location,
        class: RouteClass,
        index: usize,
    ) -> (Option<u8>, Option<u8>, Option<u8>) {
        match class {
            RouteClass::IbCrossNode => {
                let rails = Self::eligible_paths(topo, src, dst, class);
                // Rails cycle from the source's own rail so stripe 0 keeps
                // the endpoint's NIC affinity (clamped into the usable rail
                // range when the source node has more NICs than the
                // destination can land).
                let rail =
                    ((topo.nic_of(src.node, src.unit) as usize + index) % rails) as u8;
                (
                    relay_for_rail(topo, src.node, src.unit, rail),
                    relay_for_rail(topo, dst.node, dst.unit, rail),
                    Some(rail),
                )
            }
            RouteClass::NvLink => {
                let (a, b) = match (src.unit, dst.unit) {
                    (Unit::Gpu(a), Unit::Gpu(b)) => (a, b),
                    _ => unreachable!("NvLink class implies GPU endpoints"),
                };
                if index == 0 {
                    // Stripe 0 takes the dedicated pair.
                    (None, None, None)
                } else {
                    // Stripe i relays through the i-th GPU that is neither
                    // endpoint (ascending index — deterministic).
                    let relay = (0..topo.gpus_on(src.node))
                        .filter(|&g| g != a && g != b)
                        .nth(index - 1)
                        .expect("eligible_paths bounds the relay index");
                    (Some(relay), Some(relay), None)
                }
            }
            _ => unreachable!("single-path classes never reach path_of"),
        }
    }

    /// Number of stripes the plan actually carries.
    pub fn effective_stripes(&self) -> usize {
        self.stripes.len()
    }

    /// How many concurrently usable paths the topology offers between the
    /// endpoints, before any payload-size degradation — the stripe budget a
    /// resource apportioner (e.g. the mux weighted-fair scheduler) can
    /// split across tenants sharing the route. Equals the stripe count a
    /// large-payload `MAX_STRIPES` plan would produce.
    pub fn path_budget(topo: &Topology, src: Location, dst: Location) -> usize {
        Self::eligible_paths(topo, src, dst, RouteClass::classify(src, dst)).min(MAX_STRIPES)
    }

    /// True when the plan is the explicit single-path degenerate: one
    /// stripe, no rail pin, no relays — the fabric routes it exactly as an
    /// unplanned transfer.
    pub fn is_single_path(&self) -> bool {
        self.stripes.len() == 1
            && self.stripes[0].rail.is_none()
            && self.stripes[0].src_relay.is_none()
            && self.stripes[0].dst_relay.is_none()
    }
}

/// The NVLink relay fronting `rail` for an endpoint `unit` on `node`, or
/// `None` when the endpoint's own NIC *is* that rail (or the endpoint is
/// not a GPU — host traffic has no NVLink partition stage). Also used by
/// the fabric when an outage re-stripes a plan onto a surviving rail at
/// issue time.
pub(crate) fn relay_for_rail(topo: &Topology, node: u16, unit: Unit, rail: u8) -> Option<u8> {
    match unit {
        Unit::Gpu(g) => {
            if topo.nic_of(node, Unit::Gpu(g)) == rail {
                None
            } else {
                // GPU index `rail` always fronts NIC `rail` on its own
                // node (`nic_of` wraps the GPU index over the node's NIC
                // count, and plans keep
                // `rail < nics_on(node) <= gpus_on(node)`).
                Some(rail)
            }
        }
        Unit::Cpu => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(n: u16, g: u8, k: u8) -> Topology {
        Topology::new(n, g, k).expect("valid topology")
    }

    fn gpu(node: u16, i: u8) -> Location {
        Location { node, unit: Unit::Gpu(i) }
    }

    #[test]
    fn invalid_stripe_counts_are_typed_errors() {
        let t = topo(2, 4, 4);
        match MultiPathPlan::compute(&t, gpu(0, 0), gpu(1, 0), 1024, 0) {
            Err(PlanError::ZeroStripes) => {}
            other => panic!("expected ZeroStripes, got {other:?}"),
        }
        match MultiPathPlan::compute(&t, gpu(0, 0), gpu(1, 0), 1024, MAX_STRIPES + 1) {
            Err(PlanError::TooManyStripes { requested, max }) => {
                assert_eq!((requested, max), (MAX_STRIPES + 1, MAX_STRIPES));
            }
            other => panic!("expected TooManyStripes, got {other:?}"),
        }
    }

    #[test]
    fn stripe_count_one_is_the_single_path_degenerate() {
        let t = topo(2, 4, 4);
        let p = MultiPathPlan::compute(&t, gpu(0, 0), gpu(1, 2), 4096, 1).unwrap();
        assert!(p.is_single_path());
        assert_eq!(p.stripes[0].len, 4096);
        assert_eq!(p.stripes[0].offset, 0);
    }

    #[test]
    fn stripes_tile_the_payload_exactly() {
        let t = topo(2, 4, 4);
        for bytes in [1u64, 7, 1024, 1025, 65536, 1 << 20] {
            for stripes in 1..=6usize {
                let p = MultiPathPlan::compute(&t, gpu(0, 1), gpu(1, 3), bytes, stripes)
                    .unwrap();
                let mut cursor = 0u64;
                for (i, s) in p.stripes.iter().enumerate() {
                    assert_eq!(s.index, i);
                    assert_eq!(s.offset, cursor, "bytes={bytes} stripes={stripes}");
                    assert!(s.len > 0);
                    cursor += s.len;
                }
                assert_eq!(cursor, bytes, "bytes={bytes} stripes={stripes}");
                assert!(p.effective_stripes() <= stripes);
            }
        }
    }

    #[test]
    fn cross_node_stripes_cycle_rails_from_the_source_rail() {
        let t = topo(2, 4, 4);
        let p = MultiPathPlan::compute(&t, gpu(0, 1), gpu(1, 1), 4096, 4).unwrap();
        let rails: Vec<u8> = p.stripes.iter().map(|s| s.rail.unwrap()).collect();
        assert_eq!(rails, vec![1, 2, 3, 0]);
        // Stripe 0 rides the endpoints' own rail: no relays. Every other
        // stripe partitions to the GPU fronting its rail on both nodes.
        assert_eq!(p.stripes[0].src_relay, None);
        assert_eq!(p.stripes[0].dst_relay, None);
        for s in &p.stripes[1..] {
            assert_eq!(s.src_relay, Some(s.rail.unwrap()));
            assert_eq!(s.dst_relay, Some(s.rail.unwrap()));
        }
    }

    #[test]
    fn shared_rails_need_no_relay_for_their_own_gpus() {
        // 4 GPUs, 2 NICs: GPU 3 fronts rail 1 itself.
        let t = topo(2, 4, 2);
        let p = MultiPathPlan::compute(&t, gpu(0, 3), gpu(1, 3), 4096, 2).unwrap();
        assert_eq!(p.stripes[0].rail, Some(1));
        assert_eq!(p.stripes[0].src_relay, None, "rail 1 is GPU 3's own NIC");
        assert_eq!(p.stripes[1].rail, Some(0));
        assert_eq!(p.stripes[1].src_relay, Some(0));
        // Over-asking clamps to the 2 rails the topology offers.
        let p = MultiPathPlan::compute(&t, gpu(0, 0), gpu(1, 0), 4096, 8).unwrap();
        assert_eq!(p.effective_stripes(), 2);
    }

    #[test]
    fn nvlink_plans_relay_through_peer_gpus() {
        let t = topo(1, 4, 4);
        let p = MultiPathPlan::compute(&t, gpu(0, 0), gpu(0, 2), 3000, 3).unwrap();
        assert_eq!(p.effective_stripes(), 3);
        assert_eq!(p.stripes[0].src_relay, None);
        // Relays are the GPUs that are neither endpoint, ascending: 1, 3.
        assert_eq!(p.stripes[1].src_relay, Some(1));
        assert_eq!(p.stripes[2].src_relay, Some(3));
        assert!(p.stripes.iter().all(|s| s.rail.is_none()));
    }

    #[test]
    fn forbidden_classes_degrade_to_single_path() {
        let t = topo(2, 4, 4);
        let cpu = |node| Location { node, unit: Unit::Cpu };
        // Same GPU, host-local, and C2C: one substrate, one path.
        for (s, d) in [
            (gpu(0, 1), gpu(0, 1)),
            (cpu(0), cpu(0)),
            (gpu(0, 1), cpu(0)),
            (cpu(0), gpu(0, 2)),
        ] {
            let p = MultiPathPlan::compute(&t, s, d, 8192, 4).unwrap();
            assert!(p.is_single_path(), "{:?} must degrade to single path", p.class);
        }
        // A two-GPU node offers no NVLink relay: intra-node striping
        // degrades too.
        let t2 = topo(1, 2, 2);
        let p = MultiPathPlan::compute(&t2, gpu(0, 0), gpu(0, 1), 8192, 4).unwrap();
        assert!(p.is_single_path());
    }

    #[test]
    fn tiny_payloads_never_get_empty_stripes() {
        let t = topo(2, 4, 4);
        let p = MultiPathPlan::compute(&t, gpu(0, 0), gpu(1, 0), 3, 4).unwrap();
        assert_eq!(p.effective_stripes(), 3);
        assert!(p.stripes.iter().all(|s| s.len == 1));
        let p = MultiPathPlan::compute(&t, gpu(0, 0), gpu(1, 0), 0, 4).unwrap();
        assert_eq!(p.effective_stripes(), 1);
        assert_eq!(p.stripes[0].len, 0);
    }
}
