//! The fabric: routed, occupancy-aware data transfers between locations.
//!
//! Each physical link is a FIFO resource with a `busy_until` horizon;
//! a transfer reserves every hop of its route — cut-through, so the hops
//! of one message overlap after a segment delay — and accumulates per-hop
//! propagation latency. Concurrent transfers over the same link queue
//! behind each other, which is what produces bandwidth contention in the
//! ring-collective experiments.

use std::collections::HashMap;
use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_gpu::{Location, Unit};
use parcomm_obs::{Counter, Histogram, MetricsRegistry};
use parcomm_sim::{Event, SimDuration, SimHandle, SimTime, SpanId};

use crate::faults::{NetError, NetFaultConfig, NetFaults};
use crate::multipath::{relay_for_rail, MultiPathPlan, PlanError};
use crate::spec::{ClusterSpec, LinkSpec};
use crate::topology::{RouteClass, Topology, TopologyError};

/// Index of a physical link within the fabric.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct LinkId(usize);

/// Kinds of physical links the GH200 topology instantiates.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum LinkKey {
    /// Directed GPU→GPU NVLink on `node` from `src` to `dst`.
    NvLink { node: u16, src: u8, dst: u8 },
    /// Directed C2C hop on `node` for `gpu`; `up == true` means GPU→CPU.
    C2c { node: u16, gpu: u8, up: bool },
    /// IB uplink (`up == true`, node→switch) or downlink for `nic` on `node`.
    Ib { node: u16, nic: u8, up: bool },
    /// Host-memory pseudo-link on `node` (same-CPU copies).
    HostMem { node: u16 },
}

struct Link {
    spec: LinkSpec,
    busy_until: Mutex<SimTime>,
}

impl Link {
    /// Reserve the link for `bytes` starting no earlier than `at`;
    /// returns (start, end-of-serialization).
    fn reserve(&self, at: SimTime, bytes: u64) -> (SimTime, SimTime) {
        let mut busy = self.busy_until.lock();
        let start = at.max(*busy);
        let end = start + SimDuration::from_micros_f64(self.spec.serialize_us(bytes));
        *busy = end;
        (start, end)
    }
}

/// A completed routing decision: the hops a message traverses.
#[derive(Debug, Clone)]
pub struct Route {
    links: Vec<LinkId>,
    /// Total propagation latency across hops.
    pub latency: SimDuration,
}

/// An in-flight or completed transfer.
#[derive(Clone, Debug)]
pub struct Transfer {
    /// When the first hop started serializing.
    pub start: SimTime,
    /// When the last byte arrives at the destination.
    pub arrival: SimTime,
    /// Fires at `arrival`.
    pub done: Event,
    /// The transfer's `wire` trace span ([`SpanId::NONE`] when tracing is
    /// off), for causal chaining by the transport above.
    pub span: SpanId,
}

/// The per-stripe outcome of a planned multi-path transfer: which byte
/// range landed when, over which rail.
#[derive(Clone, Debug)]
pub struct StripeArrival {
    /// Stripe index within the plan.
    pub index: usize,
    /// Byte offset of the stripe within the payload.
    pub offset: u64,
    /// Stripe length in bytes.
    pub len: u64,
    /// The NIC rail the stripe actually rode (after outage re-striping);
    /// `None` for intra-node stripes and single-path delegation.
    pub rail: Option<u8>,
    /// When the stripe's last byte arrives at the destination.
    pub arrival: SimTime,
    /// The stripe's `wire` trace span ([`SpanId::NONE`] when tracing is
    /// off), for per-stripe causal chaining by the transport above.
    pub span: SpanId,
}

/// An in-flight or completed multi-path transfer executed from a
/// [`MultiPathPlan`]: per-stripe arrivals for partial reassembly plus one
/// overall completion that fires when the slowest stripe lands.
#[derive(Clone, Debug)]
pub struct StripedTransfer {
    /// When the first stripe's first hop started serializing.
    pub start: SimTime,
    /// When the whole payload is reassembled (slowest stripe's arrival,
    /// plus any fault penalty).
    pub arrival: SimTime,
    /// Fires at `arrival`.
    pub done: Event,
    /// Per-stripe arrivals, in payload order.
    pub stripes: Vec<StripeArrival>,
}

/// Metrics instruments for the fabric; attached via
/// [`Fabric::attach_metrics`], dormant otherwise.
struct NetInstruments {
    transfers: Counter,
    bytes: Counter,
    fault_penalties: Counter,
    bytes_hist: Histogram,
    /// Per-NIC-rail bytes for cross-node traffic, indexed by rail.
    rail_bytes: Vec<Counter>,
}

struct FabricInner {
    spec: ClusterSpec,
    topology: Topology,
    handle: SimHandle,
    links: Vec<Link>,
    index: HashMap<LinkKey, LinkId>,
    /// Armed fault schedule; `None` (the default) keeps every fault branch
    /// dormant so fault-free runs draw nothing and schedule nothing extra.
    faults: Mutex<Option<NetFaults>>,
    /// Attached metrics; `None` (the default) keeps metric updates to a
    /// single `Option` check per transfer.
    instruments: Mutex<Option<NetInstruments>>,
}

/// The cluster interconnect. Cheap to clone.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

impl Fabric {
    /// Build the fabric for `spec`, scheduling completions on `handle`.
    /// Panics on a malformed spec; use [`Fabric::try_new`] for the typed
    /// error.
    pub fn new(handle: SimHandle, spec: ClusterSpec) -> Fabric {
        Fabric::try_new(handle, spec)
            .unwrap_or_else(|e| panic!("invalid cluster spec: {e}"))
    }

    /// Fallible form of [`Fabric::new`]: validates the spec's shape into a
    /// [`Topology`] and reports the typed defect instead of panicking.
    pub fn try_new(handle: SimHandle, spec: ClusterSpec) -> Result<Fabric, TopologyError> {
        let topology = spec.topology()?;
        let mut links = Vec::new();
        let mut index = HashMap::new();
        let mut add = |key: LinkKey, ls: &LinkSpec| {
            let id = LinkId(links.len());
            links.push(Link { spec: ls.clone(), busy_until: Mutex::new(SimTime::ZERO) });
            index.insert(key, id);
        };
        // Instantiate each node's own GPU/NIC complement (ragged shapes
        // carry per-node counts; uniform specs reproduce the historical
        // link set exactly).
        for node in 0..topology.nodes() {
            add(LinkKey::HostMem { node }, &spec.host_mem);
            let gpus = topology.gpus_on(node);
            for gpu in 0..gpus {
                add(LinkKey::C2c { node, gpu, up: true }, &spec.c2c);
                add(LinkKey::C2c { node, gpu, up: false }, &spec.c2c);
                for dst in 0..gpus {
                    if dst != gpu {
                        add(LinkKey::NvLink { node, src: gpu, dst }, &spec.nvlink);
                    }
                }
            }
            for nic in 0..topology.nics_on(node) {
                add(LinkKey::Ib { node, nic, up: true }, &spec.ib);
                add(LinkKey::Ib { node, nic, up: false }, &spec.ib);
            }
        }
        Ok(Fabric {
            inner: Arc::new(FabricInner {
                spec,
                topology,
                handle,
                links,
                index,
                faults: Mutex::new(None),
                instruments: Mutex::new(None),
            }),
        })
    }

    /// Attach metrics instruments (`net.transfers`, `net.bytes`,
    /// `net.fault_penalties`, `net.bytes_hist`, `net.rail<N>.bytes`) to the
    /// given registry.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        let rails = (0..self.inner.topology.nics_per_node())
            .map(|nic| registry.counter(&format!("net.rail{nic}.bytes")))
            .collect();
        *self.inner.instruments.lock() = Some(NetInstruments {
            transfers: registry.counter("net.transfers"),
            bytes: registry.counter("net.bytes"),
            fault_penalties: registry.counter("net.fault_penalties"),
            bytes_hist: registry.histogram("net.bytes_hist"),
            rail_bytes: rails,
        });
    }

    /// Count one transfer; `rail_shares` lists cross-node `(nic, bytes)`
    /// shares (empty for intra-node traffic).
    fn count_transfer(&self, bytes: u64, rail_shares: &[(u8, u64)]) {
        if let Some(i) = self.inner.instruments.lock().as_ref() {
            i.transfers.inc();
            i.bytes.add(bytes);
            i.bytes_hist.record(bytes);
            for &(nic, share) in rail_shares {
                if let Some(c) = i.rail_bytes.get(nic as usize) {
                    c.add(share);
                }
            }
        }
    }

    /// Arm a deterministic fault schedule on this fabric. Fault decisions
    /// draw from a dedicated RNG seeded by `cfg.seed`, so the simulation's
    /// main RNG stream is untouched. Call before traffic starts.
    pub fn arm_faults(&self, cfg: NetFaultConfig) {
        *self.inner.faults.lock() = Some(NetFaults::new(cfg));
    }

    /// True if a fault schedule is armed.
    pub fn faults_armed(&self) -> bool {
        self.inner.faults.lock().is_some()
    }

    /// The cluster specification this fabric was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.inner.spec
    }

    /// The validated topology of this fabric.
    pub fn topology(&self) -> Topology {
        self.inner.topology.clone()
    }

    /// The simulation handle the fabric schedules on.
    pub fn sim(&self) -> &SimHandle {
        &self.inner.handle
    }

    fn link(&self, key: LinkKey) -> LinkId {
        *self
            .inner
            .index
            .get(&key)
            .unwrap_or_else(|| panic!("no such link in topology: {key:?}"))
    }

    fn nic_for(&self, loc: Location) -> u8 {
        self.inner.topology.nic_of(loc.node, loc.unit)
    }

    /// Pick a usable NIC on `node` for a transfer starting at `at`,
    /// preferring `preferred` and steering around armed outages. With no
    /// faults armed this is `preferred` unconditionally.
    fn pick_nic(&self, node: u16, preferred: u8, at: SimTime) -> Result<u8, NetError> {
        let guard = self.inner.faults.lock();
        let Some(f) = guard.as_ref() else { return Ok(preferred) };
        for i in 0..self.inner.topology.nics_on(node) {
            let nic = self.inner.topology.cycle_nic(node, preferred, i);
            if f.nic_up(node, nic, at) {
                return Ok(nic);
            }
        }
        Err(NetError::NoNicAvailable { node, at_us: at.as_micros_f64() })
    }

    /// The NIC rails (paired by index on both nodes) usable at `at` for a
    /// striped cross-node transfer: the thinner node's NIC count bounds
    /// the pairing on ragged shapes. Errors only when no rail survives.
    fn up_rails(&self, src_node: u16, dst_node: u16, at: SimTime) -> Result<Vec<u8>, NetError> {
        let n = self.inner.topology.nics_on(src_node).min(self.inner.topology.nics_on(dst_node));
        let guard = self.inner.faults.lock();
        let Some(f) = guard.as_ref() else { return Ok((0..n).collect()) };
        let rails: Vec<u8> = (0..n)
            .filter(|&nic| f.nic_up(src_node, nic, at) && f.nic_up(dst_node, nic, at))
            .collect();
        if rails.is_empty() {
            let src_down = (0..n).filter(|&nic| !f.nic_up(src_node, nic, at)).count();
            let dst_down = (0..n).filter(|&nic| !f.nic_up(dst_node, nic, at)).count();
            let node = if src_down >= dst_down { src_node } else { dst_node };
            return Err(NetError::NoNicAvailable { node, at_us: at.as_micros_f64() });
        }
        Ok(rails)
    }

    /// Latency penalty for one transfer from the armed fault schedule
    /// (retransmits + spikes); zero — with no RNG draw — when unarmed.
    fn fault_penalty(&self) -> SimDuration {
        let penalty = {
            let mut guard = self.inner.faults.lock();
            match guard.as_mut() {
                Some(f) => SimDuration::from_micros_f64(f.draw_penalty_us()),
                None => SimDuration::ZERO,
            }
        };
        if !penalty.is_zero() {
            if let Some(i) = self.inner.instruments.lock().as_ref() {
                i.fault_penalties.inc();
            }
        }
        penalty
    }

    /// Compute the route between two locations.
    ///
    /// Intra-node GPU→GPU takes the dedicated NVLink pair; GPU↔CPU takes the
    /// C2C hop; cross-node routes go NIC uplink → NIC downlink with the
    /// GPU-direct PCIe/C2C cost folded into the IB latency.
    pub fn route(&self, src: Location, dst: Location) -> Route {
        let mut links = Vec::with_capacity(2);
        match RouteClass::classify(src, dst) {
            // Local copy within one unit's memory: host-mem pseudo-link for
            // CPUs; GPU-local copies are modeled by the GPU cost model and
            // take the host-mem link's latency floor here.
            RouteClass::SameGpu | RouteClass::HostLocal => {
                links.push(self.link(LinkKey::HostMem { node: src.node }));
            }
            RouteClass::NvLink => match (src.unit, dst.unit) {
                (Unit::Gpu(a), Unit::Gpu(b)) => {
                    links.push(self.link(LinkKey::NvLink { node: src.node, src: a, dst: b }));
                }
                _ => unreachable!("NvLink class implies GPU endpoints"),
            },
            RouteClass::C2cHost => match (src.unit, dst.unit) {
                (Unit::Gpu(a), Unit::Cpu) => {
                    links.push(self.link(LinkKey::C2c { node: src.node, gpu: a, up: true }));
                }
                (Unit::Cpu, Unit::Gpu(b)) => {
                    links.push(self.link(LinkKey::C2c { node: src.node, gpu: b, up: false }));
                }
                _ => unreachable!("C2cHost class implies one GPU and one CPU endpoint"),
            },
            RouteClass::IbCrossNode => {
                let src_nic = self.nic_for(src);
                let dst_nic = self.nic_for(dst);
                links.push(self.link(LinkKey::Ib { node: src.node, nic: src_nic, up: true }));
                links.push(self.link(LinkKey::Ib { node: dst.node, nic: dst_nic, up: false }));
            }
        }
        let latency = links
            .iter()
            .map(|id| SimDuration::from_micros_f64(self.inner.links[id.0].spec.latency_us))
            .sum();
        Route { links, latency }
    }

    /// Bottleneck bandwidth (GB/s) along the route between two locations.
    pub fn path_bandwidth_gbps(&self, src: Location, dst: Location) -> f64 {
        self.route(src, dst)
            .links
            .iter()
            .map(|id| self.inner.links[id.0].spec.bandwidth_gbps)
            .fold(f64::INFINITY, f64::min)
    }

    /// End-to-end zero-load latency between two locations.
    pub fn path_latency(&self, src: Location, dst: Location) -> SimDuration {
        self.route(src, dst).latency
    }

    /// Issue a transfer of `bytes` from `src` to `dst`, starting no earlier
    /// than `at` (clamped to now). Reserves occupancy on every hop and
    /// returns a ticket whose `done` event fires at arrival.
    ///
    /// Multi-hop routes are **cut-through**: hop *i+1* begins once the
    /// first segment (64 KiB) clears hop *i*, so a message's hops overlap
    /// and the end-to-end serialization is governed by the bottleneck
    /// link, as on real InfiniBand fabrics — splitting a message does not
    /// magically double multi-hop bandwidth.
    ///
    /// The fabric moves *time*, not data: the caller applies the functional
    /// copy no later than `arrival` (typically in a completion callback).
    pub fn transfer_at(&self, at: SimTime, src: Location, dst: Location, bytes: u64) -> Transfer {
        self.try_transfer_at(at, src, dst, bytes).unwrap_or_else(|e| {
            panic!("fabric transfer {src:?} -> {dst:?} failed with no recovery path: {e}")
        })
    }

    /// Fallible form of [`transfer_at`](Fabric::transfer_at): returns
    /// [`NetError`] instead of panicking when an armed fault schedule has
    /// taken down every usable NIC on a required node. Transient drops and
    /// latency spikes never error — they surface as a later arrival (the
    /// transport retransmits under the covers). With no faults armed this is
    /// infallible and byte-identical in behavior to the fault-free fabric.
    pub fn try_transfer_at(
        &self,
        at: SimTime,
        src: Location,
        dst: Location,
        bytes: u64,
    ) -> Result<Transfer, NetError> {
        self.try_transfer_caused(at, src, dst, bytes, SpanId::NONE)
    }

    /// Like [`try_transfer_at`](Fabric::try_transfer_at), with the caller's
    /// trace span as the causal parent of the transfer's `wire` span (pass
    /// [`SpanId::NONE`] when there is none).
    pub fn try_transfer_caused(
        &self,
        at: SimTime,
        src: Location,
        dst: Location,
        bytes: u64,
        cause: SpanId,
    ) -> Result<Transfer, NetError> {
        self.try_transfer_attr(at, src, dst, bytes, cause, None, None)
    }

    /// Like [`try_transfer_caused`](Fabric::try_transfer_caused), with the
    /// destination MPI rank (and partition) the transfer delivers into
    /// recorded on its `wire` span, so `obs::critical` sees the cross-rank
    /// hop exactly instead of inferring it. Attribution is digest-neutral:
    /// span digests hash only `(category, start, end)`.
    #[allow(clippy::too_many_arguments)]
    pub fn try_transfer_attr(
        &self,
        at: SimTime,
        src: Location,
        dst: Location,
        bytes: u64,
        cause: SpanId,
        dst_rank: Option<u32>,
        partition: Option<u32>,
    ) -> Result<Transfer, NetError> {
        const SEGMENT_BYTES: u64 = 64 * 1024;
        let now = self.inner.handle.now();
        let at = at.max(now);
        // Large cross-node messages stripe across every NIC pair of the
        // two nodes (UCX multi-rail): each rail carries an equal share and
        // the message completes when the slowest rail drains.
        if src.node != dst.node && bytes >= Self::STRIPE_THRESHOLD {
            return self.striped_transfer(at, src, dst, bytes, cause, dst_rank, partition);
        }
        let (route, src_nic) = self.route_at(at, src, dst)?;
        let mut cursor = at;
        let mut first_start = None;
        let mut tail = at;
        for id in &route.links {
            let link = &self.inner.links[id.0];
            let (s, e) = link.reserve(cursor, bytes);
            if first_start.is_none() {
                first_start = Some(s);
            }
            // Next hop starts after the first segment clears this one.
            let seg = SimDuration::from_micros_f64(
                link.spec.serialize_us(bytes.min(SEGMENT_BYTES)),
            );
            cursor = s + seg;
            tail = tail.max(e);
        }
        let arrival = tail + route.latency + self.fault_penalty();
        let done = Event::new();
        {
            let done = done.clone();
            self.inner.handle.schedule_at(arrival, move |h| done.set(h));
        }
        let start = first_start.unwrap_or(at);
        let span = self
            .inner
            .handle
            .trace()
            .record_attr("wire", start, arrival, dst_rank, partition, cause);
        let rail_shares: Vec<(u8, u64)> =
            src_nic.map(|nic| vec![(nic, bytes)]).unwrap_or_default();
        self.count_transfer(bytes, &rail_shares);
        Ok(Transfer { start, arrival, done, span })
    }

    /// Like [`route`](Fabric::route), but steers cross-node hops around NIC
    /// outages active at `at`. Identical to `route` when no faults are
    /// armed. Also reports the chosen source NIC on cross-node routes (for
    /// per-rail accounting).
    fn route_at(
        &self,
        at: SimTime,
        src: Location,
        dst: Location,
    ) -> Result<(Route, Option<u8>), NetError> {
        if src.node == dst.node {
            return Ok((self.route(src, dst), None));
        }
        let src_nic = self.pick_nic(src.node, self.nic_for(src), at)?;
        let dst_nic = self.pick_nic(dst.node, self.nic_for(dst), at)?;
        let links = vec![
            self.link(LinkKey::Ib { node: src.node, nic: src_nic, up: true }),
            self.link(LinkKey::Ib { node: dst.node, nic: dst_nic, up: false }),
        ];
        let latency = links
            .iter()
            .map(|id| SimDuration::from_micros_f64(self.inner.links[id.0].spec.latency_us))
            .sum();
        Ok((Route { links, latency }, Some(src_nic)))
    }

    /// Transfer starting at the current instant.
    pub fn transfer(&self, src: Location, dst: Location, bytes: u64) -> Transfer {
        self.transfer_at(self.inner.handle.now(), src, dst, bytes)
    }

    /// Messages at or above this size stripe across all NIC rails when
    /// crossing nodes (the UCX multi-rail threshold).
    pub const STRIPE_THRESHOLD: u64 = 1 << 20;

    /// Multi-rail cross-node transfer: split `bytes` evenly over every
    /// usable (uplink, downlink) NIC pair; each rail is cut-through
    /// internally. Under an armed NIC outage the message **re-stripes** over
    /// the surviving rails — degraded bandwidth, not failure — and only
    /// errors when no rail survives.
    #[allow(clippy::too_many_arguments)]
    fn striped_transfer(
        &self,
        at: SimTime,
        src: Location,
        dst: Location,
        bytes: u64,
        cause: SpanId,
        dst_rank: Option<u32>,
        partition: Option<u32>,
    ) -> Result<Transfer, NetError> {
        const SEGMENT_BYTES: u64 = 64 * 1024;
        let rails = self.up_rails(src.node, dst.node, at)?;
        let share = bytes.div_ceil(rails.len() as u64);
        let rail_shares: Vec<(u8, u64)> = rails.iter().map(|&nic| (nic, share)).collect();
        let mut first_start: Option<SimTime> = None;
        let mut arrival = at;
        for nic in rails {
            let up = self.link(LinkKey::Ib { node: src.node, nic, up: true });
            let down = self.link(LinkKey::Ib { node: dst.node, nic, up: false });
            let mut cursor = at;
            let mut tail = at;
            let mut latency = SimDuration::ZERO;
            for id in [up, down] {
                let link = &self.inner.links[id.0];
                let (s, e) = link.reserve(cursor, share);
                if first_start.is_none() {
                    first_start = Some(s);
                }
                let seg = SimDuration::from_micros_f64(
                    link.spec.serialize_us(share.min(SEGMENT_BYTES)),
                );
                cursor = s + seg;
                tail = tail.max(e);
                latency += SimDuration::from_micros_f64(link.spec.latency_us);
            }
            arrival = arrival.max(tail + latency);
        }
        let arrival = arrival + self.fault_penalty();
        let done = Event::new();
        {
            let done = done.clone();
            self.inner.handle.schedule_at(arrival, move |h| done.set(h));
        }
        let start = first_start.unwrap_or(at);
        let span = self
            .inner
            .handle
            .trace()
            .record_attr("wire", start, arrival, dst_rank, partition, cause);
        self.count_transfer(bytes, &rail_shares);
        Ok(Transfer { start, arrival, done, span })
    }

    /// Compute a [`MultiPathPlan`] splitting `bytes` from `src` to `dst`
    /// into (up to) `stripes` stripes over the paths this fabric's
    /// topology offers. Pure planning — reserves nothing; execute with
    /// [`try_transfer_planned`](Fabric::try_transfer_planned).
    pub fn plan(
        &self,
        src: Location,
        dst: Location,
        bytes: u64,
        stripes: usize,
    ) -> Result<MultiPathPlan, PlanError> {
        MultiPathPlan::compute(&self.inner.topology, src, dst, bytes, stripes)
    }

    /// Execute a [`MultiPathPlan`]: reserve every stripe's partition →
    /// translate → assemble hops, record one `wire` span per stripe, and
    /// fire `done` when the slowest stripe lands.
    ///
    /// A single-path plan delegates to the ordinary transfer path
    /// ([`try_transfer_attr`](Fabric::try_transfer_attr)) and is therefore
    /// bit-for-bit identical to an unplanned transfer — including the
    /// implicit multi-rail striping for large cross-node messages.
    ///
    /// Under an armed NIC outage a multi-stripe cross-node plan
    /// **re-stripes at issue time**: stripes planned onto a downed rail
    /// remap deterministically onto the surviving rails (recomputing their
    /// relay hops), and the transfer only errors — with a typed
    /// [`NetError`] — when no rail survives on either node.
    pub fn try_transfer_planned(
        &self,
        at: SimTime,
        plan: &MultiPathPlan,
        cause: SpanId,
        dst_rank: Option<u32>,
        partition: Option<u32>,
    ) -> Result<StripedTransfer, NetError> {
        const SEGMENT_BYTES: u64 = 64 * 1024;
        let now = self.inner.handle.now();
        let at = at.max(now);
        if plan.is_single_path() {
            let t = self.try_transfer_attr(
                at, plan.src, plan.dst, plan.bytes, cause, dst_rank, partition,
            )?;
            return Ok(StripedTransfer {
                start: t.start,
                arrival: t.arrival,
                done: t.done,
                stripes: vec![StripeArrival {
                    index: 0,
                    offset: 0,
                    len: plan.bytes,
                    rail: None,
                    arrival: t.arrival,
                    span: t.span,
                }],
            });
        }
        let topo = self.inner.topology.clone();
        let cross_node = plan.src.node != plan.dst.node;
        // One survivor query for the whole plan: every stripe re-stripes
        // against the same outage snapshot, deterministically.
        let survivors = if cross_node {
            self.up_rails(plan.src.node, plan.dst.node, at)?
        } else {
            Vec::new()
        };
        let mut first_start: Option<SimTime> = None;
        let mut overall = at;
        let mut rail_shares: Vec<(u8, u64)> = Vec::new();
        let mut landed: Vec<(u64, u64, Option<u8>, SimTime, SimTime)> = Vec::new();
        for stripe in &plan.stripes {
            let (hops, used_rail) = if cross_node {
                let planned = stripe.rail.expect("cross-node multi-stripe plans pin rails");
                // Remap onto a surviving rail; identity when the planned
                // rail is up (the common, fault-free case).
                let rail = if survivors.contains(&planned) {
                    planned
                } else {
                    survivors[planned as usize % survivors.len()]
                };
                // Relays follow the rail actually used, so re-striping
                // keeps the three-stage pipeline consistent.
                let src_relay = relay_for_rail(&topo, plan.src.node, plan.src.unit, rail);
                let dst_relay = relay_for_rail(&topo, plan.dst.node, plan.dst.unit, rail);
                let mut hops = Vec::with_capacity(4);
                if let (Unit::Gpu(g), Some(r)) = (plan.src.unit, src_relay) {
                    hops.push(self.link(LinkKey::NvLink { node: plan.src.node, src: g, dst: r }));
                }
                hops.push(self.link(LinkKey::Ib { node: plan.src.node, nic: rail, up: true }));
                hops.push(self.link(LinkKey::Ib { node: plan.dst.node, nic: rail, up: false }));
                if let (Unit::Gpu(g), Some(r)) = (plan.dst.unit, dst_relay) {
                    hops.push(self.link(LinkKey::NvLink { node: plan.dst.node, src: r, dst: g }));
                }
                (hops, Some(rail))
            } else {
                // Intra-node NVLink multipath: the direct pair, or a
                // two-hop relay through a peer GPU.
                let (a, b) = match (plan.src.unit, plan.dst.unit) {
                    (Unit::Gpu(a), Unit::Gpu(b)) => (a, b),
                    _ => unreachable!("intra-node multi-stripe plans imply GPU endpoints"),
                };
                let node = plan.src.node;
                let hops = match stripe.src_relay {
                    None => vec![self.link(LinkKey::NvLink { node, src: a, dst: b })],
                    Some(r) => vec![
                        self.link(LinkKey::NvLink { node, src: a, dst: r }),
                        self.link(LinkKey::NvLink { node, src: r, dst: b }),
                    ],
                };
                (hops, None)
            };
            let mut cursor = at;
            let mut tail = at;
            let mut latency = SimDuration::ZERO;
            let mut stripe_start: Option<SimTime> = None;
            for id in hops {
                let link = &self.inner.links[id.0];
                let (s, e) = link.reserve(cursor, stripe.len);
                if stripe_start.is_none() {
                    stripe_start = Some(s);
                }
                let seg = SimDuration::from_micros_f64(
                    link.spec.serialize_us(stripe.len.min(SEGMENT_BYTES)),
                );
                cursor = s + seg;
                tail = tail.max(e);
                latency += SimDuration::from_micros_f64(link.spec.latency_us);
            }
            let stripe_start = stripe_start.unwrap_or(at);
            if first_start.is_none() {
                first_start = Some(stripe_start);
            }
            let stripe_arrival = tail + latency;
            overall = overall.max(stripe_arrival);
            if let Some(rail) = used_rail {
                match rail_shares.iter_mut().find(|(r, _)| *r == rail) {
                    Some((_, share)) => *share += stripe.len,
                    None => rail_shares.push((rail, stripe.len)),
                }
            }
            landed.push((stripe.offset, stripe.len, used_rail, stripe_start, stripe_arrival));
        }
        let arrival = overall + self.fault_penalty();
        let done = Event::new();
        {
            let done = done.clone();
            self.inner.handle.schedule_at(arrival, move |h| done.set(h));
        }
        let trace = self.inner.handle.trace();
        let stripes: Vec<StripeArrival> = landed
            .into_iter()
            .enumerate()
            .map(|(index, (offset, len, rail, s, a))| StripeArrival {
                index,
                offset,
                len,
                rail,
                arrival: a,
                span: trace.record_attr("wire", s, a, dst_rank, partition, cause),
            })
            .collect();
        // Rail accounting uses the exact stripe lengths, so the per-rail
        // counters sum to the payload precisely.
        self.count_transfer(plan.bytes, &rail_shares);
        Ok(StripedTransfer { start: first_start.unwrap_or(at), arrival, done, stripes })
    }

    /// Effective bandwidth between two locations for a large message,
    /// including multi-rail striping on cross-node paths. This is what
    /// bandwidth-bound collectives (e.g. the NCCL ring) sustain per hop.
    pub fn striped_bandwidth_gbps(&self, src: Location, dst: Location) -> f64 {
        let base = self.path_bandwidth_gbps(src, dst);
        if src.node != dst.node {
            let rails = self
                .inner
                .topology
                .nics_on(src.node)
                .min(self.inner.topology.nics_on(dst.node));
            base * rails as f64
        } else {
            base
        }
    }

    /// Analytic (zero-contention) duration of a transfer: cut-through
    /// serialization (bottleneck hop plus one segment per extra hop) plus
    /// propagation. Used by the kernel-copy path to extend kernel windows.
    pub fn unloaded_duration(&self, src: Location, dst: Location, bytes: u64) -> SimDuration {
        const SEGMENT_BYTES: u64 = 64 * 1024;
        // Mirror transfer_at's multi-rail striping for large cross-node
        // messages: each rail carries an equal share.
        let bytes = if src.node != dst.node && bytes >= Self::STRIPE_THRESHOLD {
            let rails = self
                .inner
                .topology
                .nics_on(src.node)
                .min(self.inner.topology.nics_on(dst.node));
            bytes.div_ceil(rails as u64)
        } else {
            bytes
        };
        let route = self.route(src, dst);
        let mut cursor = 0.0f64;
        let mut tail = 0.0f64;
        for id in &route.links {
            let spec = &self.inner.links[id.0].spec;
            let end = cursor + spec.serialize_us(bytes);
            tail = tail.max(end);
            cursor += spec.serialize_us(bytes.min(SEGMENT_BYTES));
        }
        SimDuration::from_micros_f64(tail) + route.latency
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("nodes", &self.inner.spec.nodes)
            .field("links", &self.inner.links.len())
            .finish()
    }
}
