//! First-class cluster topology: the single home of rank ↔ (node, GPU)
//! mapping, locality queries, route classification, and NIC-rail
//! assignment.
//!
//! Every layer that used to do ad-hoc `rank % gpus_per_node` arithmetic
//! (fabric routing, rkey/IPC eligibility, world construction, collective
//! schedule builders) asks a [`Topology`] instead. The type is validated at
//! construction — see [`TopologyError`] — so a malformed [`ClusterSpec`]
//! fails loudly with a typed error rather than silently wrapping modulo
//! zero, and it is `Copy`, so handing it to schedule builders or device
//! code costs nothing.
//!
//! Rank layout is the paper's deployment: one rank per GPU, ranks dense by
//! node (`rank = node * gpus_per_node + local_index`; ranks 0–3 on node 0,
//! 4–7 on node 1 for the 2×4 GH200 testbed).

use parcomm_gpu::{GpuId, Location, Unit};

use crate::spec::ClusterSpec;

/// A malformed cluster shape, reported at [`Topology`] construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// `nodes == 0`: no cluster.
    ZeroNodes,
    /// `gpus_per_node == 0`: ranks are one-per-GPU, so no ranks exist.
    ZeroGpusPerNode,
    /// `nics_per_node == 0`: cross-node routes would have no rail.
    ZeroNics,
    /// More NICs than GPUs: the `GPU i → NIC i % nics` rail assignment
    /// would leave rails permanently dark, which is always a spec typo on
    /// the GH200-style one-NIC-per-GPU designs this models.
    NicsExceedGpus {
        /// NICs per node in the offending spec.
        nics: u8,
        /// GPUs per node in the offending spec.
        gpus: u8,
    },
    /// A rank index outside `0..num_ranks()`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// World size of the topology.
        size: usize,
    },
    /// A `GpuId` naming a node or on-node index the topology doesn't have.
    GpuOutOfRange {
        /// The offending identity.
        node: u16,
        /// The offending on-node index.
        index: u8,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::ZeroNodes => write!(f, "cluster spec has zero nodes"),
            TopologyError::ZeroGpusPerNode => write!(f, "cluster spec has zero GPUs per node"),
            TopologyError::ZeroNics => write!(f, "cluster spec has zero NICs per node"),
            TopologyError::NicsExceedGpus { nics, gpus } => {
                write!(f, "cluster spec has more NICs ({nics}) than GPUs ({gpus}) per node")
            }
            TopologyError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for world of {size} ranks")
            }
            TopologyError::GpuOutOfRange { node, index } => {
                write!(f, "gpu{node}.{index} does not exist in this topology")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The structural class of a route between two locations. Intra- and
/// inter-node paths are different *regimes* (different substrate, different
/// eligibility rules), not just different bandwidth values.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum RouteClass {
    /// Source and destination are the same GPU (local HBM copy).
    SameGpu,
    /// GPU → GPU on one node: the dedicated NVLink pair.
    NvLink,
    /// GPU ↔ CPU on one node: the NVLink-C2C hop.
    C2cHost,
    /// CPU-local traffic on one node: the host-memory pseudo-link.
    HostLocal,
    /// Different nodes: NIC uplink → InfiniBand → NIC downlink. The only
    /// class where Kernel Copy is impossible and rail striping applies.
    IbCrossNode,
}

impl RouteClass {
    /// Classify the route between two locations. Pure — needs no spec,
    /// because the class depends only on where the endpoints sit.
    pub fn classify(src: Location, dst: Location) -> RouteClass {
        if src.node != dst.node {
            return RouteClass::IbCrossNode;
        }
        match (src.unit, dst.unit) {
            (Unit::Gpu(a), Unit::Gpu(b)) if a == b => RouteClass::SameGpu,
            (Unit::Gpu(_), Unit::Gpu(_)) => RouteClass::NvLink,
            (Unit::Gpu(_), Unit::Cpu) | (Unit::Cpu, Unit::Gpu(_)) => RouteClass::C2cHost,
            (Unit::Cpu, Unit::Cpu) => RouteClass::HostLocal,
        }
    }

    /// True when the route never leaves the node.
    pub fn is_intra_node(self) -> bool {
        !matches!(self, RouteClass::IbCrossNode)
    }

    /// True when a CUDA-IPC mapping of device memory can serve this route —
    /// the Kernel Copy substrate. Exactly the intra-node classes: IPC
    /// handles never cross the InfiniBand boundary, so cross-node traffic
    /// must take the Progression Engine path.
    pub fn ipc_eligible(self) -> bool {
        self.is_intra_node()
    }
}

/// Validated cluster shape with every locality query the stack needs.
/// `Copy` and three words wide — pass it by value.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Topology {
    nodes: u16,
    gpus_per_node: u8,
    nics_per_node: u8,
}

impl Topology {
    /// Build a topology from a raw shape, validating it.
    pub fn new(nodes: u16, gpus_per_node: u8, nics_per_node: u8) -> Result<Topology, TopologyError> {
        if nodes == 0 {
            return Err(TopologyError::ZeroNodes);
        }
        if gpus_per_node == 0 {
            return Err(TopologyError::ZeroGpusPerNode);
        }
        if nics_per_node == 0 {
            return Err(TopologyError::ZeroNics);
        }
        if nics_per_node > gpus_per_node {
            return Err(TopologyError::NicsExceedGpus { nics: nics_per_node, gpus: gpus_per_node });
        }
        Ok(Topology { nodes, gpus_per_node, nics_per_node })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// GPUs on every node.
    pub fn gpus_per_node(&self) -> u8 {
        self.gpus_per_node
    }

    /// NICs on every node.
    pub fn nics_per_node(&self) -> u8 {
        self.nics_per_node
    }

    /// World size: one MPI rank per GPU.
    pub fn num_ranks(&self) -> usize {
        self.nodes as usize * self.gpus_per_node as usize
    }

    fn check_rank(&self, rank: usize) -> usize {
        assert!(
            rank < self.num_ranks(),
            "{}",
            TopologyError::RankOutOfRange { rank, size: self.num_ranks() }
        );
        rank
    }

    /// The GPU rank `r` drives.
    pub fn gpu_of(&self, r: usize) -> GpuId {
        self.check_rank(r);
        let per = self.gpus_per_node as usize;
        GpuId { node: (r / per) as u16, index: (r % per) as u8 }
    }

    /// The rank driving `gpu` (inverse of [`Topology::gpu_of`]).
    pub fn rank_of(&self, gpu: GpuId) -> usize {
        assert!(
            gpu.node < self.nodes && gpu.index < self.gpus_per_node,
            "{}",
            TopologyError::GpuOutOfRange { node: gpu.node, index: gpu.index }
        );
        gpu.node as usize * self.gpus_per_node as usize + gpu.index as usize
    }

    /// The node rank `r` runs on.
    pub fn node_of(&self, r: usize) -> u16 {
        self.gpu_of(r).node
    }

    /// Rank `r`'s GPU index on its node.
    pub fn local_index(&self, r: usize) -> u8 {
        self.gpu_of(r).index
    }

    /// The fabric location of rank `r`'s GPU.
    pub fn location_of(&self, r: usize) -> Location {
        self.gpu_of(r).location()
    }

    /// True when two ranks share a node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Route class between two ranks' GPUs.
    pub fn route_class(&self, a: usize, b: usize) -> RouteClass {
        RouteClass::classify(self.location_of(a), self.location_of(b))
    }

    /// The NIC rail serving `unit` for cross-node traffic: GPU *i* uses
    /// NIC *i* mod `nics_per_node` (rail affinity by PCIe proximity on the
    /// GH200 boards); CPU traffic takes rail 0. This is the one place the
    /// assignment arithmetic lives.
    pub fn nic_of(&self, unit: Unit) -> u8 {
        match unit {
            Unit::Gpu(i) => i % self.nics_per_node,
            Unit::Cpu => 0,
        }
    }

    /// The NIC rail serving rank `r`'s GPU.
    pub fn nic_of_rank(&self, r: usize) -> u8 {
        self.nic_of(Unit::Gpu(self.local_index(r)))
    }

    /// The designated leader rank (local index 0) of `node`.
    pub fn node_leader(&self, node: u16) -> usize {
        assert!(node < self.nodes, "node {node} out of range ({} nodes)", self.nodes);
        node as usize * self.gpus_per_node as usize
    }

    /// True when rank `r` is its node's leader.
    pub fn is_node_leader(&self, r: usize) -> bool {
        self.local_index(r) == 0
    }

    /// The contiguous rank range living on `node`.
    pub fn ranks_on_node(&self, node: u16) -> std::ops::Range<usize> {
        let lead = self.node_leader(node);
        lead..lead + self.gpus_per_node as usize
    }

    /// Next rank on rank `r`'s node-local ring (wraps within the node).
    pub fn local_next(&self, r: usize) -> usize {
        let g = self.gpus_per_node as usize;
        let gpu = self.gpu_of(r);
        gpu.node as usize * g + (gpu.index as usize + 1) % g
    }

    /// Previous rank on rank `r`'s node-local ring.
    pub fn local_prev(&self, r: usize) -> usize {
        let g = self.gpus_per_node as usize;
        let gpu = self.gpu_of(r);
        gpu.node as usize * g + (gpu.index as usize + g - 1) % g
    }

    /// The same-local-index rank on the next node (wraps): rank `r`'s
    /// neighbor on its NIC-rail-aligned inter-node ring.
    pub fn rail_next(&self, r: usize) -> usize {
        let gpu = self.gpu_of(r);
        let n = ((gpu.node + 1) % self.nodes) as usize;
        n * self.gpus_per_node as usize + gpu.index as usize
    }

    /// The same-local-index rank on the previous node (wraps).
    pub fn rail_prev(&self, r: usize) -> usize {
        let gpu = self.gpu_of(r);
        let n = ((gpu.node + self.nodes - 1) % self.nodes) as usize;
        n * self.gpus_per_node as usize + gpu.index as usize
    }
}

impl ClusterSpec {
    /// Validate the cluster shape, returning the typed defect if any.
    pub fn validate(&self) -> Result<(), TopologyError> {
        self.topology().map(|_| ())
    }

    /// The validated [`Topology`] of this spec.
    pub fn topology(&self) -> Result<Topology, TopologyError> {
        Topology::new(self.nodes, self.gpus_per_node, self.nics_per_node)
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{} ({} NIC/node)", self.nodes, self.gpus_per_node, self.nics_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(n: u16, g: u8, k: u8) -> Topology {
        Topology::new(n, g, k).expect("valid topology")
    }

    #[test]
    fn validation_rejects_degenerate_shapes() {
        assert_eq!(Topology::new(0, 4, 4), Err(TopologyError::ZeroNodes));
        assert_eq!(Topology::new(2, 0, 4), Err(TopologyError::ZeroGpusPerNode));
        assert_eq!(Topology::new(2, 4, 0), Err(TopologyError::ZeroNics));
        assert_eq!(
            Topology::new(2, 2, 4),
            Err(TopologyError::NicsExceedGpus { nics: 4, gpus: 2 })
        );
        let mut spec = ClusterSpec::gh200(2);
        assert!(spec.validate().is_ok());
        spec.nodes = 0;
        assert_eq!(spec.validate(), Err(TopologyError::ZeroNodes));
    }

    #[test]
    fn rank_gpu_mapping_round_trips() {
        let t = topo(3, 4, 2);
        assert_eq!(t.num_ranks(), 12);
        for r in 0..t.num_ranks() {
            let gpu = t.gpu_of(r);
            assert_eq!(t.rank_of(gpu), r);
            assert_eq!(t.node_of(r), gpu.node);
            assert_eq!(t.local_index(r), gpu.index);
            assert_eq!(t.location_of(r), gpu.location());
        }
        assert_eq!(t.gpu_of(5), GpuId { node: 1, index: 1 });
    }

    #[test]
    #[should_panic(expected = "rank 12 out of range")]
    fn rank_out_of_range_panics() {
        topo(3, 4, 2).gpu_of(12);
    }

    #[test]
    fn route_classes() {
        let gpu = |node, i| Location { node, unit: Unit::Gpu(i) };
        let cpu = |node| Location { node, unit: Unit::Cpu };
        assert_eq!(RouteClass::classify(gpu(0, 1), gpu(0, 1)), RouteClass::SameGpu);
        assert_eq!(RouteClass::classify(gpu(0, 1), gpu(0, 2)), RouteClass::NvLink);
        assert_eq!(RouteClass::classify(gpu(0, 1), cpu(0)), RouteClass::C2cHost);
        assert_eq!(RouteClass::classify(cpu(0), gpu(0, 3)), RouteClass::C2cHost);
        assert_eq!(RouteClass::classify(cpu(0), cpu(0)), RouteClass::HostLocal);
        assert_eq!(RouteClass::classify(gpu(0, 1), gpu(1, 1)), RouteClass::IbCrossNode);
        assert!(RouteClass::NvLink.ipc_eligible());
        assert!(RouteClass::C2cHost.ipc_eligible());
        assert!(!RouteClass::IbCrossNode.ipc_eligible());
        assert!(!RouteClass::IbCrossNode.is_intra_node());
    }

    #[test]
    fn rails_and_rings() {
        let t = topo(4, 4, 2);
        // GPU i rides NIC i % 2.
        assert_eq!(t.nic_of(Unit::Gpu(0)), 0);
        assert_eq!(t.nic_of(Unit::Gpu(3)), 1);
        assert_eq!(t.nic_of(Unit::Cpu), 0);
        assert_eq!(t.nic_of_rank(7), 1);
        // Leaders and node rank ranges.
        assert_eq!(t.node_leader(2), 8);
        assert!(t.is_node_leader(8));
        assert!(!t.is_node_leader(9));
        assert_eq!(t.ranks_on_node(1), 4..8);
        // Node-local ring wraps within the node.
        assert_eq!(t.local_next(7), 4);
        assert_eq!(t.local_prev(4), 7);
        // Rail ring hops nodes at fixed local index.
        assert_eq!(t.rail_next(13), 1); // node 3, gpu 1 -> node 0, gpu 1
        assert_eq!(t.rail_prev(1), 13);
        assert_eq!(t.route_class(0, 1), RouteClass::NvLink);
        assert_eq!(t.route_class(0, 4), RouteClass::IbCrossNode);
        assert!(t.same_node(4, 7));
        assert!(!t.same_node(3, 4));
    }
}
