//! First-class cluster topology: the single home of rank ↔ (node, GPU,
//! slot) mapping, locality queries, route classification, and NIC-rail
//! assignment.
//!
//! Every layer that used to do ad-hoc `rank % gpus_per_node` arithmetic
//! (fabric routing, rkey/IPC eligibility, world construction, collective
//! schedule builders) asks a [`Topology`] instead. The type is validated at
//! construction — see [`TopologyError`] — so a malformed [`ClusterSpec`]
//! fails loudly with a typed error rather than silently wrapping modulo
//! zero.
//!
//! Shapes are **ragged**: every node carries its own GPU and NIC count,
//! and a `ranks_per_gpu` factor oversubscribes ranks onto GPUs (multiple
//! ranks time-sharing one device, as real launchers do with
//! `node_rank % dev_count`). Rank layout is node-contiguous via prefix
//! sums: node `v` hosts the `gpus_on(v) · ranks_per_gpu` ranks starting at
//! `node_leader(v)`; within a node, local rank `j` drives GPU
//! `j % gpus_on(v)` in slot `j / gpus_on(v)`. Uniform one-rank-per-GPU
//! specs ([`Topology::new`]) reproduce the historical closed-form layout
//! (`rank = node * gpus_per_node + local_index`) exactly — every query is
//! observationally identical on them, which the frozen digests pin.
//!
//! The tables live behind an `Arc`, so `Topology` is `Clone` (one pointer
//! copy) but no longer `Copy`.

use std::sync::Arc;

use parcomm_gpu::{GpuId, Location, Unit};

use crate::spec::ClusterSpec;

/// Most local ranks one node may host (`gpus_on(v) · ranks_per_gpu`): the
/// per-node ring arithmetic and slot indices stay in `u8`-sized headroom.
pub const MAX_LOCAL_RANKS: usize = 256;

/// A malformed cluster shape, reported at [`Topology`] construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// `nodes == 0`: no cluster.
    ZeroNodes,
    /// `gpus_per_node == 0` in a uniform spec: ranks live on GPUs, so no
    /// ranks exist.
    ZeroGpusPerNode,
    /// A ragged spec listing a node with zero GPUs: a nodeless entry must
    /// be dropped from the spec, not carried as an empty shell.
    EmptyNode {
        /// The offending node index.
        node: u16,
    },
    /// `nics == 0` somewhere: cross-node routes would have no rail.
    ZeroNics,
    /// `ranks_per_gpu == 0`: no rank could be placed anywhere.
    ZeroRanksPerGpu,
    /// A node whose `gpus · ranks_per_gpu` exceeds [`MAX_LOCAL_RANKS`].
    OversubscriptionOverflow {
        /// The offending node index.
        node: u16,
        /// Local ranks the spec asks the node to host.
        ranks: usize,
        /// The cap ([`MAX_LOCAL_RANKS`]).
        max: usize,
    },
    /// A ragged spec whose per-node GPU and NIC lists disagree in length:
    /// the rail tables would have no shape to align to.
    RaggedRailMismatch {
        /// Number of per-node GPU counts supplied.
        gpu_nodes: usize,
        /// Number of per-node NIC counts supplied.
        nic_nodes: usize,
    },
    /// More NICs than GPUs on one node: the `GPU i → NIC i % nics` rail
    /// assignment would leave rails permanently dark, which is always a
    /// spec typo on the GH200-style one-NIC-per-GPU designs this models.
    NicsExceedGpus {
        /// The offending node index.
        node: u16,
        /// NICs on the offending node.
        nics: u8,
        /// GPUs on the offending node.
        gpus: u8,
    },
    /// A rank index outside `0..num_ranks()`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// World size of the topology.
        size: usize,
    },
    /// A `GpuId` naming a node or on-node index the topology doesn't have.
    GpuOutOfRange {
        /// The offending identity.
        node: u16,
        /// The offending on-node index.
        index: u8,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::ZeroNodes => write!(f, "cluster spec has zero nodes"),
            TopologyError::ZeroGpusPerNode => write!(f, "cluster spec has zero GPUs per node"),
            TopologyError::EmptyNode { node } => {
                write!(f, "cluster spec has zero GPUs on node {node}")
            }
            TopologyError::ZeroNics => write!(f, "cluster spec has zero NICs per node"),
            TopologyError::ZeroRanksPerGpu => write!(f, "cluster spec has zero ranks per GPU"),
            TopologyError::OversubscriptionOverflow { node, ranks, max } => {
                write!(
                    f,
                    "oversubscription would place {ranks} ranks on node {node} (max {max})"
                )
            }
            TopologyError::RaggedRailMismatch { gpu_nodes, nic_nodes } => {
                write!(
                    f,
                    "ragged spec lists {gpu_nodes} per-node GPU counts but {nic_nodes} per-node NIC counts"
                )
            }
            TopologyError::NicsExceedGpus { node, nics, gpus } => {
                write!(f, "cluster spec has more NICs ({nics}) than GPUs ({gpus}) on node {node}")
            }
            TopologyError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for world of {size} ranks")
            }
            TopologyError::GpuOutOfRange { node, index } => {
                write!(f, "gpu{node}.{index} does not exist in this topology")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The structural class of a route between two locations. Intra- and
/// inter-node paths are different *regimes* (different substrate, different
/// eligibility rules), not just different bandwidth values.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum RouteClass {
    /// Source and destination are the same GPU (local HBM copy). With rank
    /// oversubscription this is a regime ranks actually exercise: two
    /// co-resident ranks share one device, so their traffic never leaves
    /// its HBM.
    SameGpu,
    /// GPU → GPU on one node: the dedicated NVLink pair.
    NvLink,
    /// GPU ↔ CPU on one node: the NVLink-C2C hop.
    C2cHost,
    /// CPU-local traffic on one node: the host-memory pseudo-link.
    HostLocal,
    /// Different nodes: NIC uplink → InfiniBand → NIC downlink. The only
    /// class where Kernel Copy is impossible and rail striping applies.
    IbCrossNode,
}

impl RouteClass {
    /// Classify the route between two locations. Pure — needs no spec,
    /// because the class depends only on where the endpoints sit.
    pub fn classify(src: Location, dst: Location) -> RouteClass {
        if src.node != dst.node {
            return RouteClass::IbCrossNode;
        }
        match (src.unit, dst.unit) {
            (Unit::Gpu(a), Unit::Gpu(b)) if a == b => RouteClass::SameGpu,
            (Unit::Gpu(_), Unit::Gpu(_)) => RouteClass::NvLink,
            (Unit::Gpu(_), Unit::Cpu) | (Unit::Cpu, Unit::Gpu(_)) => RouteClass::C2cHost,
            (Unit::Cpu, Unit::Cpu) => RouteClass::HostLocal,
        }
    }

    /// True when the route never leaves the node.
    pub fn is_intra_node(self) -> bool {
        !matches!(self, RouteClass::IbCrossNode)
    }

    /// True when a CUDA-IPC mapping of device memory can serve this route —
    /// the Kernel Copy substrate. Exactly the intra-node classes: IPC
    /// handles never cross the InfiniBand boundary, so cross-node traffic
    /// must take the Progression Engine path.
    pub fn ipc_eligible(self) -> bool {
        self.is_intra_node()
    }
}

/// The validated shape tables behind a [`Topology`].
#[derive(Debug, PartialEq, Eq)]
struct Shape {
    /// GPUs on each node (`len() == nodes`, every entry > 0).
    node_gpus: Vec<u8>,
    /// NICs on each node (aligned with `node_gpus`, every entry > 0).
    node_nics: Vec<u8>,
    /// Ranks sharing each GPU (≥ 1; 1 = the paper's one-rank-per-GPU).
    ranks_per_gpu: u8,
    /// Prefix sums of per-node local rank counts: node `v` hosts ranks
    /// `rank_base[v]..rank_base[v + 1]`; the last entry is the world size.
    rank_base: Vec<usize>,
}

/// Validated cluster shape with every locality query the stack needs.
/// The tables sit behind an `Arc`; clone freely (one pointer copy).
#[derive(Clone, Debug, Eq)]
pub struct Topology {
    shape: Arc<Shape>,
}

impl PartialEq for Topology {
    fn eq(&self, other: &Topology) -> bool {
        Arc::ptr_eq(&self.shape, &other.shape) || *self.shape == *other.shape
    }
}

impl Topology {
    /// Build a uniform one-rank-per-GPU topology, validating it. This is
    /// the historical constructor: every node carries `gpus_per_node` GPUs
    /// and `nics_per_node` NICs, and the rank layout is the closed-form
    /// `rank = node * gpus_per_node + local_index`.
    pub fn new(nodes: u16, gpus_per_node: u8, nics_per_node: u8) -> Result<Topology, TopologyError> {
        if nodes == 0 {
            return Err(TopologyError::ZeroNodes);
        }
        if gpus_per_node == 0 {
            return Err(TopologyError::ZeroGpusPerNode);
        }
        Topology::ragged(
            vec![gpus_per_node; nodes as usize],
            vec![nics_per_node; nodes as usize],
            1,
        )
    }

    /// Build a ragged, possibly oversubscribed topology: `node_gpus[v]`
    /// GPUs and `node_nics[v]` NICs on node `v`, with `ranks_per_gpu`
    /// ranks sharing each GPU. The lists must align; every node needs at
    /// least one GPU and one NIC, no node may front more NICs than GPUs,
    /// and no node may host more than [`MAX_LOCAL_RANKS`] ranks.
    pub fn ragged(
        node_gpus: Vec<u8>,
        node_nics: Vec<u8>,
        ranks_per_gpu: u8,
    ) -> Result<Topology, TopologyError> {
        if node_gpus.is_empty() {
            return Err(TopologyError::ZeroNodes);
        }
        if node_gpus.len() != node_nics.len() {
            return Err(TopologyError::RaggedRailMismatch {
                gpu_nodes: node_gpus.len(),
                nic_nodes: node_nics.len(),
            });
        }
        assert!(node_gpus.len() <= u16::MAX as usize, "node count exceeds u16");
        if ranks_per_gpu == 0 {
            return Err(TopologyError::ZeroRanksPerGpu);
        }
        let mut rank_base = Vec::with_capacity(node_gpus.len() + 1);
        rank_base.push(0usize);
        for (v, (&g, &k)) in node_gpus.iter().zip(&node_nics).enumerate() {
            if g == 0 {
                return Err(TopologyError::EmptyNode { node: v as u16 });
            }
            if k == 0 {
                return Err(TopologyError::ZeroNics);
            }
            if k > g {
                return Err(TopologyError::NicsExceedGpus { node: v as u16, nics: k, gpus: g });
            }
            let local = g as usize * ranks_per_gpu as usize;
            if local > MAX_LOCAL_RANKS {
                return Err(TopologyError::OversubscriptionOverflow {
                    node: v as u16,
                    ranks: local,
                    max: MAX_LOCAL_RANKS,
                });
            }
            let base = *rank_base.last().expect("non-empty");
            rank_base.push(base + local);
        }
        Ok(Topology {
            shape: Arc::new(Shape { node_gpus, node_nics, ranks_per_gpu, rank_base }),
        })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u16 {
        self.shape.node_gpus.len() as u16
    }

    /// GPUs on the largest node. On uniform shapes this is *the* per-node
    /// GPU count (the historical meaning); ragged callers that need a
    /// specific node use [`Topology::gpus_on`].
    pub fn gpus_per_node(&self) -> u8 {
        *self.shape.node_gpus.iter().max().expect("validated non-empty")
    }

    /// NICs on the best-railed node. On uniform shapes this is *the*
    /// per-node NIC count; ragged callers that need a specific node use
    /// [`Topology::nics_on`].
    pub fn nics_per_node(&self) -> u8 {
        *self.shape.node_nics.iter().max().expect("validated non-empty")
    }

    /// GPUs on `node`.
    pub fn gpus_on(&self, node: u16) -> u8 {
        self.check_node(node);
        self.shape.node_gpus[node as usize]
    }

    /// NICs on `node`.
    pub fn nics_on(&self, node: u16) -> u8 {
        self.check_node(node);
        self.shape.node_nics[node as usize]
    }

    /// Ranks sharing each GPU (1 = no oversubscription).
    pub fn ranks_per_gpu(&self) -> u8 {
        self.shape.ranks_per_gpu
    }

    /// Local ranks hosted by `node` (`gpus_on(node) · ranks_per_gpu`).
    pub fn local_size(&self, node: u16) -> usize {
        self.gpus_on(node) as usize * self.shape.ranks_per_gpu as usize
    }

    /// The smallest per-node local rank count — the hierarchical
    /// schedules' core ring width (ragged nodes degrade to it).
    pub fn min_local_size(&self) -> usize {
        (0..self.nodes()).map(|v| self.local_size(v)).min().expect("non-empty")
    }

    /// True when every node carries the same GPU and NIC counts (the
    /// historical uniform deployment, oversubscribed or not).
    pub fn is_uniform(&self) -> bool {
        self.shape.node_gpus.iter().all(|&g| g == self.shape.node_gpus[0])
            && self.shape.node_nics.iter().all(|&k| k == self.shape.node_nics[0])
    }

    /// World size: `Σ_v gpus_on(v) · ranks_per_gpu`.
    pub fn num_ranks(&self) -> usize {
        *self.shape.rank_base.last().expect("non-empty")
    }

    fn check_rank(&self, rank: usize) -> usize {
        assert!(
            rank < self.num_ranks(),
            "{}",
            TopologyError::RankOutOfRange { rank, size: self.num_ranks() }
        );
        rank
    }

    fn check_node(&self, node: u16) -> u16 {
        assert!(node < self.nodes(), "node {node} out of range ({} nodes)", self.nodes());
        node
    }

    /// The node rank `r` runs on (prefix-sum lookup).
    pub fn node_of(&self, r: usize) -> u16 {
        self.check_rank(r);
        (self.shape.rank_base.partition_point(|&b| b <= r) - 1) as u16
    }

    /// Rank `r`'s index among its node's local ranks
    /// (`0..local_size(node)`). Equals the GPU index when
    /// `ranks_per_gpu == 1`.
    pub fn local_rank(&self, r: usize) -> usize {
        let node = self.node_of(r);
        r - self.shape.rank_base[node as usize]
    }

    /// The GPU rank `r` drives: local rank `j` on node `v` drives GPU
    /// `j % gpus_on(v)` — co-resident oversubscribed ranks share the id.
    pub fn gpu_of(&self, r: usize) -> GpuId {
        let node = self.node_of(r);
        let local = r - self.shape.rank_base[node as usize];
        let g = self.shape.node_gpus[node as usize] as usize;
        GpuId { node, index: (local % g) as u8 }
    }

    /// Rank `r`'s oversubscription slot on its GPU
    /// (`0..ranks_per_gpu`; always 0 without oversubscription).
    pub fn slot_of(&self, r: usize) -> u8 {
        let node = self.node_of(r);
        let local = r - self.shape.rank_base[node as usize];
        let g = self.shape.node_gpus[node as usize] as usize;
        (local / g) as u8
    }

    /// The primary (slot-0) rank driving `gpu`. The exact inverse of
    /// [`Topology::gpu_of`] without oversubscription.
    pub fn rank_of(&self, gpu: GpuId) -> usize {
        assert!(
            gpu.node < self.nodes() && gpu.index < self.shape.node_gpus[gpu.node as usize],
            "{}",
            TopologyError::GpuOutOfRange { node: gpu.node, index: gpu.index }
        );
        self.shape.rank_base[gpu.node as usize] + gpu.index as usize
    }

    /// Rank `r`'s GPU index on its node.
    pub fn local_index(&self, r: usize) -> u8 {
        self.gpu_of(r).index
    }

    /// The fabric location of rank `r`'s GPU.
    pub fn location_of(&self, r: usize) -> Location {
        self.gpu_of(r).location()
    }

    /// True when two ranks share a node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Route class between two ranks' GPUs. Oversubscribed co-resident
    /// ranks classify as [`RouteClass::SameGpu`].
    pub fn route_class(&self, a: usize, b: usize) -> RouteClass {
        RouteClass::classify(self.location_of(a), self.location_of(b))
    }

    /// The NIC rail serving `unit` on `node` for cross-node traffic:
    /// GPU *i* uses NIC *i* mod `nics_on(node)` (rail affinity by PCIe
    /// proximity on the GH200 boards); CPU traffic takes rail 0. This is
    /// the one place the assignment arithmetic lives.
    pub fn nic_of(&self, node: u16, unit: Unit) -> u8 {
        match unit {
            Unit::Gpu(i) => i % self.nics_on(node),
            Unit::Cpu => 0,
        }
    }

    /// The NIC rail serving rank `r`'s GPU.
    pub fn nic_of_rank(&self, r: usize) -> u8 {
        let gpu = self.gpu_of(r);
        self.nic_of(gpu.node, Unit::Gpu(gpu.index))
    }

    /// The `attempt`-th fallback rail on `node` starting from `preferred`
    /// (failover cycling — kept next to [`Topology::nic_of`] so rail
    /// arithmetic has a single home).
    pub fn cycle_nic(&self, node: u16, preferred: u8, attempt: u8) -> u8 {
        let n = self.nics_on(node);
        (preferred % n).wrapping_add(attempt) % n
    }

    /// The designated leader rank (local rank 0) of `node`.
    pub fn node_leader(&self, node: u16) -> usize {
        self.check_node(node);
        self.shape.rank_base[node as usize]
    }

    /// True when rank `r` is its node's leader.
    pub fn is_node_leader(&self, r: usize) -> bool {
        self.local_rank(r) == 0
    }

    /// The contiguous rank range living on `node`.
    pub fn ranks_on_node(&self, node: u16) -> std::ops::Range<usize> {
        self.check_node(node);
        self.shape.rank_base[node as usize]..self.shape.rank_base[node as usize + 1]
    }

    /// Next rank on rank `r`'s node-local ring (wraps within the node).
    pub fn local_next(&self, r: usize) -> usize {
        let node = self.node_of(r);
        let base = self.shape.rank_base[node as usize];
        base + (r - base + 1) % self.local_size(node)
    }

    /// Previous rank on rank `r`'s node-local ring.
    pub fn local_prev(&self, r: usize) -> usize {
        let node = self.node_of(r);
        let base = self.shape.rank_base[node as usize];
        let size = self.local_size(node);
        base + (r - base + size - 1) % size
    }

    /// True when `node` hosts a rank at local index `l` — i.e. the node
    /// participates in local index `l`'s inter-node rail ring.
    pub fn owns_local_rank(&self, node: u16, l: usize) -> bool {
        l < self.local_size(node)
    }

    /// The same-local-index rank on the next node *owning that index*
    /// (wraps): rank `r`'s neighbor on its NIC-rail-aligned inter-node
    /// ring. On uniform shapes every node owns every index, reproducing
    /// the historical node `+1` hop; ragged rail rings skip nodes too
    /// small to field the index.
    pub fn rail_next(&self, r: usize) -> usize {
        let l = self.local_rank(r);
        let n = self.nodes();
        let mut v = (self.node_of(r) + 1) % n;
        while !self.owns_local_rank(v, l) {
            v = (v + 1) % n;
        }
        self.shape.rank_base[v as usize] + l
    }

    /// The same-local-index rank on the previous owning node (wraps).
    pub fn rail_prev(&self, r: usize) -> usize {
        let l = self.local_rank(r);
        let n = self.nodes();
        let mut v = (self.node_of(r) + n - 1) % n;
        while !self.owns_local_rank(v, l) {
            v = (v + n - 1) % n;
        }
        self.shape.rank_base[v as usize] + l
    }
}

impl ClusterSpec {
    /// Validate the cluster shape, returning the typed defect if any.
    pub fn validate(&self) -> Result<(), TopologyError> {
        self.topology().map(|_| ())
    }

    /// The validated [`Topology`] of this spec. Uniform specs (no ragged
    /// overrides, `ranks_per_gpu ≤ 1`) take the historical closed-form
    /// path; any ragged field routes through [`Topology::ragged`].
    pub fn topology(&self) -> Result<Topology, TopologyError> {
        if self.node_gpus.is_empty() && self.node_nics.is_empty() && self.ranks_per_gpu <= 1 {
            return Topology::new(self.nodes, self.gpus_per_node, self.nics_per_node);
        }
        if self.node_gpus.is_empty() && self.nodes == 0 {
            return Err(TopologyError::ZeroNodes);
        }
        let gpus = if self.node_gpus.is_empty() {
            vec![self.gpus_per_node; self.nodes as usize]
        } else {
            self.node_gpus.clone()
        };
        let nics = if self.node_nics.is_empty() {
            vec![self.nics_per_node; gpus.len()]
        } else {
            self.node_nics.clone()
        };
        Topology::ragged(gpus, nics, self.ranks_per_gpu.max(1))
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_uniform() {
            write!(
                f,
                "{}x{} ({} NIC/node)",
                self.nodes(),
                self.shape.node_gpus[0],
                self.shape.node_nics[0]
            )?;
        } else {
            let gpus: Vec<String> =
                self.shape.node_gpus.iter().map(|g| g.to_string()).collect();
            let nics: Vec<String> =
                self.shape.node_nics.iter().map(|k| k.to_string()).collect();
            write!(f, "{}:{}", gpus.join(","), nics.join(","))?;
        }
        if self.shape.ranks_per_gpu > 1 {
            write!(f, " @{} ranks/GPU", self.shape.ranks_per_gpu)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(n: u16, g: u8, k: u8) -> Topology {
        Topology::new(n, g, k).expect("valid topology")
    }

    fn ragged(gpus: &[u8], nics: &[u8], o: u8) -> Topology {
        Topology::ragged(gpus.to_vec(), nics.to_vec(), o).expect("valid ragged topology")
    }

    #[test]
    fn validation_rejects_degenerate_shapes() {
        assert_eq!(Topology::new(0, 4, 4), Err(TopologyError::ZeroNodes));
        assert_eq!(Topology::new(2, 0, 4), Err(TopologyError::ZeroGpusPerNode));
        assert_eq!(Topology::new(2, 4, 0), Err(TopologyError::ZeroNics));
        assert_eq!(
            Topology::new(2, 2, 4),
            Err(TopologyError::NicsExceedGpus { node: 0, nics: 4, gpus: 2 })
        );
        let mut spec = ClusterSpec::gh200(2);
        assert!(spec.validate().is_ok());
        spec.nodes = 0;
        assert_eq!(spec.validate(), Err(TopologyError::ZeroNodes));
    }

    #[test]
    fn validation_rejects_degenerate_ragged_shapes() {
        assert_eq!(Topology::ragged(vec![], vec![], 1), Err(TopologyError::ZeroNodes));
        assert_eq!(
            Topology::ragged(vec![4, 0, 2], vec![4, 1, 2], 1),
            Err(TopologyError::EmptyNode { node: 1 })
        );
        assert_eq!(
            Topology::ragged(vec![4, 2], vec![4, 0], 1),
            Err(TopologyError::ZeroNics)
        );
        assert_eq!(
            Topology::ragged(vec![4, 2], vec![4, 2], 0),
            Err(TopologyError::ZeroRanksPerGpu)
        );
        assert_eq!(
            Topology::ragged(vec![4, 2, 1], vec![4, 2], 1),
            Err(TopologyError::RaggedRailMismatch { gpu_nodes: 3, nic_nodes: 2 })
        );
        assert_eq!(
            Topology::ragged(vec![4, 2], vec![4, 3], 1),
            Err(TopologyError::NicsExceedGpus { node: 1, nics: 3, gpus: 2 })
        );
        assert_eq!(
            Topology::ragged(vec![4, 200], vec![4, 2], 2),
            Err(TopologyError::OversubscriptionOverflow {
                node: 1,
                ranks: 400,
                max: MAX_LOCAL_RANKS
            })
        );
    }

    #[test]
    fn rank_gpu_mapping_round_trips() {
        let t = topo(3, 4, 2);
        assert_eq!(t.num_ranks(), 12);
        for r in 0..t.num_ranks() {
            let gpu = t.gpu_of(r);
            assert_eq!(t.rank_of(gpu), r);
            assert_eq!(t.node_of(r), gpu.node);
            assert_eq!(t.local_index(r), gpu.index);
            assert_eq!(t.local_rank(r), gpu.index as usize);
            assert_eq!(t.slot_of(r), 0);
            assert_eq!(t.location_of(r), gpu.location());
        }
        assert_eq!(t.gpu_of(5), GpuId { node: 1, index: 1 });
        assert!(t.is_uniform());
    }

    #[test]
    fn ragged_prefix_sum_layout() {
        // Nodes of 4/2/4/1 GPUs — the canonical ragged shape.
        let t = ragged(&[4, 2, 4, 1], &[2, 1, 2, 1], 1);
        assert_eq!(t.num_ranks(), 11);
        assert_eq!(t.nodes(), 4);
        assert!(!t.is_uniform());
        assert_eq!(t.gpus_per_node(), 4); // max over nodes
        assert_eq!(t.nics_per_node(), 2);
        assert_eq!(t.min_local_size(), 1);
        assert_eq!((t.node_leader(0), t.node_leader(1), t.node_leader(2), t.node_leader(3)),
                   (0, 4, 6, 10));
        assert_eq!(t.ranks_on_node(1), 4..6);
        assert_eq!(t.node_of(5), 1);
        assert_eq!(t.gpu_of(5), GpuId { node: 1, index: 1 });
        assert_eq!(t.gpu_of(10), GpuId { node: 3, index: 0 });
        // Node-local rings wrap within each node's own width.
        assert_eq!(t.local_next(5), 4);
        assert_eq!(t.local_prev(4), 5);
        assert_eq!(t.local_next(10), 10); // 1-GPU node: self-ring
        // NIC rails cycle over the node-local NIC count.
        assert_eq!(t.nic_of_rank(1), 1); // node 0: GPU 1 % 2 NICs
        assert_eq!(t.nic_of_rank(5), 0); // node 1: GPU 1 % 1 NIC
    }

    #[test]
    fn ragged_rail_rings_skip_small_nodes() {
        let t = ragged(&[4, 2, 4, 1], &[2, 1, 2, 1], 1);
        // Local index 0 exists everywhere: full node ring 0→1→2→3→0.
        assert_eq!(t.rail_next(0), 4);
        assert_eq!(t.rail_next(4), 6);
        assert_eq!(t.rail_next(6), 10);
        assert_eq!(t.rail_next(10), 0);
        assert_eq!(t.rail_prev(0), 10);
        // Local index 1 skips node 3 (1 GPU).
        assert_eq!(t.rail_next(1), 5);
        assert_eq!(t.rail_next(5), 7);
        assert_eq!(t.rail_next(7), 1);
        assert_eq!(t.rail_prev(1), 7);
        // Local index 3 exists only on nodes 0 and 2.
        assert_eq!(t.rail_next(3), 9);
        assert_eq!(t.rail_next(9), 3);
    }

    #[test]
    fn oversubscription_shares_gpus_and_classifies_same_gpu() {
        // 2 nodes × 2 GPUs, 2 ranks per GPU: local ranks 0..4, GPU j % 2.
        let t = ragged(&[2, 2], &[2, 2], 2);
        assert_eq!(t.num_ranks(), 8);
        assert_eq!(t.ranks_per_gpu(), 2);
        assert_eq!(t.local_size(0), 4);
        // Ranks 0 and 2 co-reside on node 0 GPU 0 (slots 0 and 1).
        assert_eq!(t.gpu_of(0), t.gpu_of(2));
        assert_eq!((t.slot_of(0), t.slot_of(2)), (0, 1));
        assert_eq!(t.route_class(0, 2), RouteClass::SameGpu);
        assert_eq!(t.route_class(0, 1), RouteClass::NvLink);
        assert_eq!(t.route_class(0, 4), RouteClass::IbCrossNode);
        // rank_of returns the slot-0 primary.
        assert_eq!(t.rank_of(t.gpu_of(2)), 0);
        // The local ring runs over all 4 local ranks.
        assert_eq!(t.local_next(3), 0);
        // Rail rings pair equal local ranks across nodes.
        assert_eq!(t.rail_next(2), 6);
        assert_eq!(t.rail_prev(6), 2);
    }

    #[test]
    #[should_panic(expected = "rank 12 out of range")]
    fn rank_out_of_range_panics() {
        topo(3, 4, 2).gpu_of(12);
    }

    #[test]
    fn route_classes() {
        let gpu = |node, i| Location { node, unit: Unit::Gpu(i) };
        let cpu = |node| Location { node, unit: Unit::Cpu };
        assert_eq!(RouteClass::classify(gpu(0, 1), gpu(0, 1)), RouteClass::SameGpu);
        assert_eq!(RouteClass::classify(gpu(0, 1), gpu(0, 2)), RouteClass::NvLink);
        assert_eq!(RouteClass::classify(gpu(0, 1), cpu(0)), RouteClass::C2cHost);
        assert_eq!(RouteClass::classify(cpu(0), gpu(0, 3)), RouteClass::C2cHost);
        assert_eq!(RouteClass::classify(cpu(0), cpu(0)), RouteClass::HostLocal);
        assert_eq!(RouteClass::classify(gpu(0, 1), gpu(1, 1)), RouteClass::IbCrossNode);
        assert!(RouteClass::NvLink.ipc_eligible());
        assert!(RouteClass::C2cHost.ipc_eligible());
        assert!(!RouteClass::IbCrossNode.ipc_eligible());
        assert!(!RouteClass::IbCrossNode.is_intra_node());
    }

    #[test]
    fn rails_and_rings() {
        let t = topo(4, 4, 2);
        // GPU i rides NIC i % 2.
        assert_eq!(t.nic_of(0, Unit::Gpu(0)), 0);
        assert_eq!(t.nic_of(0, Unit::Gpu(3)), 1);
        assert_eq!(t.nic_of(0, Unit::Cpu), 0);
        assert_eq!(t.nic_of_rank(7), 1);
        // Failover rail cycling stays node-local.
        assert_eq!(t.cycle_nic(0, 1, 1), 0);
        // Leaders and node rank ranges.
        assert_eq!(t.node_leader(2), 8);
        assert!(t.is_node_leader(8));
        assert!(!t.is_node_leader(9));
        assert_eq!(t.ranks_on_node(1), 4..8);
        // Node-local ring wraps within the node.
        assert_eq!(t.local_next(7), 4);
        assert_eq!(t.local_prev(4), 7);
        // Rail ring hops nodes at fixed local index.
        assert_eq!(t.rail_next(13), 1); // node 3, gpu 1 -> node 0, gpu 1
        assert_eq!(t.rail_prev(1), 13);
        assert_eq!(t.route_class(0, 1), RouteClass::NvLink);
        assert_eq!(t.route_class(0, 4), RouteClass::IbCrossNode);
        assert!(t.same_node(4, 7));
        assert!(!t.same_node(3, 4));
    }
}
