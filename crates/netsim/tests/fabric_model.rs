//! Integration tests for the fabric: routing, bandwidth, latency, and
//! link contention.

use parcomm_gpu::{Location, Unit};
use parcomm_net::{ClusterSpec, Fabric};
use parcomm_sim::{SimConfig, Simulation};

fn gpu(node: u16, idx: u8) -> Location {
    Location { node, unit: Unit::Gpu(idx) }
}

fn cpu(node: u16) -> Location {
    Location { node, unit: Unit::Cpu }
}

#[test]
fn intra_node_gpu_route_is_nvlink() {
    let sim = Simulation::new(SimConfig::default());
    let fabric = Fabric::new(sim.handle(), ClusterSpec::gh200(2));
    assert_eq!(fabric.path_bandwidth_gbps(gpu(0, 0), gpu(0, 1)), 150.0);
    let lat = fabric.path_latency(gpu(0, 0), gpu(0, 1)).as_micros_f64();
    assert!((1.8..2.0).contains(&lat), "nvlink latency {lat}");
}

#[test]
fn inter_node_route_is_ib() {
    let sim = Simulation::new(SimConfig::default());
    let fabric = Fabric::new(sim.handle(), ClusterSpec::gh200(2));
    assert_eq!(fabric.path_bandwidth_gbps(gpu(0, 0), gpu(1, 0)), 50.0);
    // Two IB hops at 1.75 µs each.
    let lat = fabric.path_latency(gpu(0, 0), gpu(1, 0)).as_micros_f64();
    assert!((3.4..3.6).contains(&lat), "ib latency {lat}");
}

#[test]
fn gpu_cpu_route_is_c2c() {
    let sim = Simulation::new(SimConfig::default());
    let fabric = Fabric::new(sim.handle(), ClusterSpec::gh200(1));
    assert_eq!(fabric.path_bandwidth_gbps(gpu(0, 2), cpu(0)), 450.0);
    assert_eq!(fabric.path_bandwidth_gbps(cpu(0), gpu(0, 2)), 450.0);
}

#[test]
fn transfer_times_match_bandwidth() {
    let mut sim = Simulation::new(SimConfig::default());
    let fabric = Fabric::new(sim.handle(), ClusterSpec::gh200(1));
    sim.spawn("p", move |ctx| {
        // 150 MB over 150 GB/s NVLink = 1 ms + 1.9 µs latency.
        let t = fabric.transfer(gpu(0, 0), gpu(0, 1), 150_000_000);
        ctx.wait(&t.done);
        let us = ctx.now().as_micros_f64();
        assert!((1001.0..1003.0).contains(&us), "arrival at {us}");
    });
    sim.run().unwrap();
}

#[test]
fn same_link_transfers_contend() {
    let mut sim = Simulation::new(SimConfig::default());
    let fabric = Fabric::new(sim.handle(), ClusterSpec::gh200(1));
    sim.spawn("p", move |ctx| {
        let a = fabric.transfer(gpu(0, 0), gpu(0, 1), 150_000_000);
        let b = fabric.transfer(gpu(0, 0), gpu(0, 1), 150_000_000);
        // Second transfer queues behind the first on the same link.
        assert!(b.start >= a.start);
        assert!(
            b.arrival.since(a.arrival).as_micros_f64() > 900.0,
            "second transfer must serialize"
        );
        ctx.wait(&b.done);
    });
    sim.run().unwrap();
}

#[test]
fn distinct_links_do_not_contend() {
    let mut sim = Simulation::new(SimConfig::default());
    let fabric = Fabric::new(sim.handle(), ClusterSpec::gh200(1));
    sim.spawn("p", move |ctx| {
        let a = fabric.transfer(gpu(0, 0), gpu(0, 1), 150_000_000);
        let b = fabric.transfer(gpu(0, 2), gpu(0, 3), 150_000_000);
        let delta =
            (a.arrival.as_micros_f64() - b.arrival.as_micros_f64()).abs();
        assert!(delta < 1.0, "independent NVLink pairs must run in parallel");
        ctx.wait(&a.done);
        ctx.wait(&b.done);
    });
    sim.run().unwrap();
}

#[test]
fn opposite_directions_do_not_contend() {
    let mut sim = Simulation::new(SimConfig::default());
    let fabric = Fabric::new(sim.handle(), ClusterSpec::gh200(1));
    sim.spawn("p", move |ctx| {
        let a = fabric.transfer(gpu(0, 0), gpu(0, 1), 150_000_000);
        let b = fabric.transfer(gpu(0, 1), gpu(0, 0), 150_000_000);
        let delta = (a.arrival.as_micros_f64() - b.arrival.as_micros_f64()).abs();
        assert!(delta < 1.0, "NVLink is full duplex in the model");
        ctx.wait(&a.done);
        ctx.wait(&b.done);
    });
    sim.run().unwrap();
}

#[test]
fn cross_node_nic_mapping_separates_gpu_flows() {
    let mut sim = Simulation::new(SimConfig::default());
    let fabric = Fabric::new(sim.handle(), ClusterSpec::gh200(2));
    sim.spawn("p", move |ctx| {
        // Below the multi-rail stripe threshold, GPU 0 and GPU 1 use their
        // own NICs, so cross-node flows overlap.
        let a = fabric.transfer(gpu(0, 0), gpu(1, 0), 512_000);
        let b = fabric.transfer(gpu(0, 1), gpu(1, 1), 512_000);
        let delta = (a.arrival.as_micros_f64() - b.arrival.as_micros_f64()).abs();
        assert!(delta < 1.0, "per-GPU NICs must not serialize");
        ctx.wait(&a.done);
        ctx.wait(&b.done);
    });
    sim.run().unwrap();
}

#[test]
fn unloaded_duration_matches_actual_on_idle_fabric() {
    let mut sim = Simulation::new(SimConfig::default());
    let fabric = Fabric::new(sim.handle(), ClusterSpec::gh200(2));
    sim.spawn("p", move |ctx| {
        // Above the stripe threshold: the analytic form must model the
        // multi-rail split exactly like the reservation path.
        let predicted = fabric.unloaded_duration(gpu(0, 0), gpu(1, 2), 1 << 22);
        let t0 = ctx.now();
        let t = fabric.transfer(gpu(0, 0), gpu(1, 2), 1 << 22);
        ctx.wait(&t.done);
        let actual = ctx.now().since(t0);
        // Allow 2 ns of float-rounding skew between the analytic form and
        // the hop-by-hop reservation arithmetic.
        let delta = predicted.as_nanos().abs_diff(actual.as_nanos());
        assert!(delta <= 2, "predicted {predicted} vs actual {actual}");
    });
    sim.run().unwrap();
}

#[test]
fn zero_byte_transfer_is_latency_only() {
    let mut sim = Simulation::new(SimConfig::default());
    let fabric = Fabric::new(sim.handle(), ClusterSpec::gh200(1));
    sim.spawn("p", move |ctx| {
        let t = fabric.transfer(gpu(0, 0), gpu(0, 1), 0);
        ctx.wait(&t.done);
        let us = ctx.now().as_micros_f64();
        assert!((1.8..2.0).contains(&us), "latency-only arrival {us}");
    });
    sim.run().unwrap();
}

#[test]
fn large_cross_node_transfers_stripe_across_rails() {
    let mut sim = Simulation::new(SimConfig::default());
    let fabric = Fabric::new(sim.handle(), ClusterSpec::gh200(2));
    sim.spawn("p", move |ctx| {
        // 200 MB striped over 4 × 50 GB/s rails ≈ 1 ms; single-rail would
        // be 4 ms.
        let t = fabric.transfer(gpu(0, 0), gpu(1, 0), 200_000_000);
        ctx.wait(&t.done);
        let us = ctx.now().as_micros_f64();
        assert!((1000.0..1100.0).contains(&us), "striped arrival {us}");
    });
    sim.run().unwrap();
}

#[test]
fn transfer_at_future_time_respects_start() {
    let mut sim = Simulation::new(SimConfig::default());
    let fabric = Fabric::new(sim.handle(), ClusterSpec::gh200(1));
    sim.spawn("p", move |ctx| {
        let at = ctx.now() + parcomm_sim::SimDuration::from_micros(100);
        let t = fabric.transfer_at(at, gpu(0, 0), gpu(0, 1), 1500);
        assert_eq!(t.start, at);
        ctx.wait(&t.done);
        assert!(ctx.now().as_micros_f64() >= 100.0);
    });
    sim.run().unwrap();
}
