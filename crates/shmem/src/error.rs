//! Typed errors of the symmetric-heap backend.

use parcomm_gpu::Location;
use parcomm_net::RouteClass;

/// Errors surfaced by the symmetric heap and the device-initiated
/// one-sided path built on it.
#[derive(Debug, Clone, PartialEq)]
pub enum ShmemError {
    /// A symmetric bind asked for more bytes than the rank's segment has
    /// left. Segments are sized once at world construction
    /// (`WorldConfig::shmem_heap_bytes`); the heap never grows.
    HeapExhausted {
        /// Bytes the bind requested (after alignment padding).
        requested: u64,
        /// Bytes remaining in the segment.
        remaining: u64,
    },
    /// A symmetric offset violates the heap's alignment contract. Device
    /// puts and signals address the heap in aligned words; a misaligned
    /// offset can never have come from [`crate::SymmetricHeap::bind`].
    Misaligned {
        /// The offending offset.
        offset: u64,
        /// The required alignment.
        align: u64,
    },
    /// A symmetric access targeted a rank whose segment is not registered,
    /// or an offset range no bind covers. Translation is local — there is
    /// no remote fault handler to page the access in.
    UnregisteredAccess {
        /// The target rank.
        rank: usize,
        /// The offending symmetric offset within the rank's segment.
        offset: u64,
    },
    /// The rank's heap segment failed to register at world construction
    /// (fault hook): every symmetric operation involving it is refused and
    /// channels fall back to the Progression Engine.
    RegistrationFailed {
        /// The rank whose registration failed.
        rank: usize,
    },
    /// The route between the two GPUs does not support symmetric access
    /// (device-initiated stores need the NVLink-class path; cross-node IB
    /// puts go through the host proxy — i.e. the Progression Engine).
    RouteForbidden {
        /// Initiator GPU location.
        src: Location,
        /// Target GPU location.
        dst: Location,
        /// The classified route.
        class: RouteClass,
    },
    /// A device-initiated put exhausted its retry budget without finding a
    /// usable route (fault-injected outage outlasting the retry window).
    WireTimeout {
        /// Attempts made (first try + retries).
        attempts: u32,
        /// Virtual time spent retrying, in whole microseconds.
        waited_us: u64,
        /// Stringified fabric error from the final attempt.
        cause: String,
    },
}

impl std::fmt::Display for ShmemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShmemError::HeapExhausted { requested, remaining } => write!(
                f,
                "symmetric heap exhausted: bind of {requested} B with {remaining} B remaining"
            ),
            ShmemError::Misaligned { offset, align } => {
                write!(f, "symmetric offset {offset:#x} violates {align}-byte alignment")
            }
            ShmemError::UnregisteredAccess { rank, offset } => write!(
                f,
                "unregistered symmetric access: rank {rank} offset {offset:#x} is not bound"
            ),
            ShmemError::RegistrationFailed { rank } => {
                write!(f, "symmetric heap registration failed on rank {rank}")
            }
            ShmemError::RouteForbidden { src, dst, class } => write!(
                f,
                "route {src:?} -> {dst:?} ({class:?}) forbids symmetric access"
            ),
            ShmemError::WireTimeout { attempts, waited_us, cause } => write!(
                f,
                "shmem put gave up after {attempts} attempts ({waited_us}us of backoff): {cause}"
            ),
        }
    }
}

impl std::error::Error for ShmemError {}
