//! The symmetric memory heap.
//!
//! One [`SymmetricHeap`] is registered per world at construction: every rank
//! owns a fixed-size segment at a deterministic base offset
//! (`rank * bytes_per_rank`), mirroring how NVSHMEM carves one symmetric
//! heap out of every PE's device memory during `nvshmem_init`. Because the
//! whole heap is registered up front, a channel that lives inside it needs
//! **no rkey exchange, ever**: the initiator translates
//! `(rank, symmetric offset)` to the target buffer locally.
//!
//! The simulation models binds (a buffer adopted into a rank's segment) as
//! bump allocations with an alignment contract; translation resolves a
//! peer's binding through the shared registry — the in-simulation stand-in
//! for symmetric addressing. Exhaustion, misalignment, unregistered access,
//! and fault-injected registration failure all surface as typed
//! [`ShmemError`]s.

use std::collections::BTreeMap;
use std::sync::Arc;

use parcomm_gpu::Buffer;
use parcomm_sim::Mutex;

use crate::error::ShmemError;
use crate::obs::ShmemInstruments;

/// Alignment contract of the symmetric heap: every bind starts on (and
/// every flag/signal word lands on) an 8-byte boundary.
pub const SHMEM_ALIGN: u64 = 8;

struct Segment {
    /// `false` when the rank's registration failed (fault hook): every
    /// symmetric operation involving the rank is refused.
    registered: bool,
    /// Bump cursor of the next free byte within the segment.
    cursor: u64,
    /// Bound buffers keyed by their symmetric offset.
    bindings: BTreeMap<u64, Buffer>,
}

struct HeapInner {
    bytes_per_rank: u64,
    segments: Mutex<Vec<Segment>>,
    instruments: Mutex<Option<ShmemInstruments>>,
}

/// The world's symmetric heap. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct SymmetricHeap {
    inner: Arc<HeapInner>,
}

impl SymmetricHeap {
    /// Register the heap for `ranks` ranks, `bytes_per_rank` each. This is
    /// the once-per-world registration: base offsets are deterministic and
    /// no later rkey exchange is needed. Ranks listed in `failed_ranks`
    /// model a fault-injected registration failure — their segments exist
    /// but refuse every symmetric operation.
    pub fn new(ranks: usize, bytes_per_rank: u64, failed_ranks: &[usize]) -> Self {
        let segments = (0..ranks)
            .map(|r| Segment {
                registered: !failed_ranks.contains(&r),
                cursor: 0,
                bindings: BTreeMap::new(),
            })
            .collect();
        SymmetricHeap {
            inner: Arc::new(HeapInner {
                bytes_per_rank,
                segments: Mutex::new(segments),
                instruments: Mutex::new(None),
            }),
        }
    }

    /// Attach the `shmem.*` metrics instruments to `registry` (pure
    /// atomics — digest-neutral). Idempotent.
    pub fn attach_metrics(&self, registry: &parcomm_obs::MetricsRegistry) {
        let mut slot = self.inner.instruments.lock();
        if slot.is_none() {
            *slot = Some(ShmemInstruments::new(registry));
        }
    }

    /// The attached instruments, if metrics are enabled.
    pub fn obs(&self) -> Option<ShmemInstruments> {
        self.inner.instruments.lock().clone()
    }

    /// Number of ranks the heap was registered for.
    pub fn ranks(&self) -> usize {
        self.inner.segments.lock().len()
    }

    /// Segment capacity per rank, in bytes.
    pub fn bytes_per_rank(&self) -> u64 {
        self.inner.bytes_per_rank
    }

    /// Deterministic base offset of `rank`'s segment in the global
    /// symmetric address space.
    pub fn base_offset(&self, rank: usize) -> u64 {
        rank as u64 * self.inner.bytes_per_rank
    }

    /// Whether `rank`'s segment registered successfully at construction.
    pub fn is_registered(&self, rank: usize) -> bool {
        self.inner.segments.lock().get(rank).is_some_and(|s| s.registered)
    }

    /// Bytes remaining in `rank`'s segment.
    pub fn remaining(&self, rank: usize) -> u64 {
        let segs = self.inner.segments.lock();
        segs.get(rank)
            .map(|s| self.inner.bytes_per_rank - s.cursor)
            .unwrap_or(0)
    }

    /// Bytes already bound (bump-allocated, padding included) in `rank`'s
    /// segment — the admission-quota accounting view: a multiplexer
    /// apportioning the heap across tenants checks a tenant's projected
    /// binding against its share before admitting the channel.
    pub fn used(&self, rank: usize) -> u64 {
        let segs = self.inner.segments.lock();
        segs.get(rank).map(|s| s.cursor).unwrap_or(0)
    }

    /// Adopt `buffer` into `rank`'s segment: bump-allocate an aligned
    /// symmetric offset and record the binding. The returned offset is what
    /// peers use to address the buffer — no rkey travels.
    pub fn bind(&self, rank: usize, buffer: &Buffer) -> Result<u64, ShmemError> {
        let mut segs = self.inner.segments.lock();
        let seg = segs
            .get_mut(rank)
            .ok_or(ShmemError::UnregisteredAccess { rank, offset: 0 })?;
        if !seg.registered {
            return Err(ShmemError::RegistrationFailed { rank });
        }
        let offset = seg.cursor.next_multiple_of(SHMEM_ALIGN);
        let requested = offset - seg.cursor + buffer.len() as u64;
        let remaining = self.inner.bytes_per_rank - seg.cursor;
        if requested > remaining {
            return Err(ShmemError::HeapExhausted { requested, remaining });
        }
        seg.cursor = offset + buffer.len() as u64;
        seg.bindings.insert(offset, buffer.clone());
        if let Some(i) = self.inner.instruments.lock().as_ref() {
            i.binds.inc();
        }
        Ok(offset)
    }

    /// Translate a symmetric `(rank, offset)` locally to the bound buffer —
    /// the device-side address translation that replaces the rkey lookup.
    /// `len` bytes starting at `offset` must fall inside one binding.
    pub fn translate(&self, rank: usize, offset: u64, len: u64) -> Result<Buffer, ShmemError> {
        if !offset.is_multiple_of(SHMEM_ALIGN) {
            return Err(ShmemError::Misaligned { offset, align: SHMEM_ALIGN });
        }
        let segs = self.inner.segments.lock();
        let seg = segs
            .get(rank)
            .ok_or(ShmemError::UnregisteredAccess { rank, offset })?;
        if !seg.registered {
            return Err(ShmemError::RegistrationFailed { rank });
        }
        let (&base, buffer) = seg
            .bindings
            .range(..=offset)
            .next_back()
            .ok_or(ShmemError::UnregisteredAccess { rank, offset })?;
        if offset + len > base + buffer.len() as u64 {
            return Err(ShmemError::UnregisteredAccess { rank, offset });
        }
        Ok(buffer.clone())
    }
}

impl std::fmt::Debug for SymmetricHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymmetricHeap")
            .field("ranks", &self.ranks())
            .field("bytes_per_rank", &self.inner.bytes_per_rank)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm_gpu::MemSpace;

    fn host_buf(len: usize) -> Buffer {
        Buffer::alloc(MemSpace::Host { node: 0 }, len)
    }

    #[test]
    fn base_offsets_are_deterministic() {
        let h = SymmetricHeap::new(8, 1 << 20, &[]);
        for r in 0..8 {
            assert_eq!(h.base_offset(r), r as u64 * (1 << 20));
        }
    }

    #[test]
    fn bind_and_translate_round_trip() {
        let h = SymmetricHeap::new(2, 4096, &[]);
        let b = host_buf(128);
        let off = h.bind(1, &b).expect("bind");
        assert_eq!(off, 0);
        let got = h.translate(1, off, 128).expect("translate");
        assert!(got.same_allocation(&b));
        // A second bind lands after the first, aligned.
        let b2 = host_buf(24);
        let off2 = h.bind(1, &b2).expect("bind 2");
        assert_eq!(off2, 128);
        // Interior offsets of a binding resolve too.
        let got2 = h.translate(1, off2 + 8, 16).expect("interior");
        assert!(got2.same_allocation(&b2));
    }

    #[test]
    fn exhaustion_is_typed() {
        let h = SymmetricHeap::new(1, 100, &[]);
        let err = h.bind(0, &host_buf(128)).unwrap_err();
        assert_eq!(err, ShmemError::HeapExhausted { requested: 128, remaining: 100 });
    }

    #[test]
    fn misalignment_is_typed() {
        let h = SymmetricHeap::new(1, 4096, &[]);
        h.bind(0, &host_buf(64)).expect("bind");
        let err = h.translate(0, 3, 8).unwrap_err();
        assert_eq!(err, ShmemError::Misaligned { offset: 3, align: SHMEM_ALIGN });
    }

    #[test]
    fn unregistered_access_is_typed() {
        let h = SymmetricHeap::new(2, 4096, &[]);
        // No binding covers the offset.
        let err = h.translate(0, 8, 8).unwrap_err();
        assert_eq!(err, ShmemError::UnregisteredAccess { rank: 0, offset: 8 });
        // Reading past the end of a binding is unregistered too.
        h.bind(0, &host_buf(64)).expect("bind");
        let err = h.translate(0, 0, 72).unwrap_err();
        assert_eq!(err, ShmemError::UnregisteredAccess { rank: 0, offset: 0 });
        // Unknown rank.
        let err = h.translate(9, 0, 8).unwrap_err();
        assert_eq!(err, ShmemError::UnregisteredAccess { rank: 9, offset: 0 });
    }

    #[test]
    fn registration_failure_refuses_every_operation() {
        let h = SymmetricHeap::new(2, 4096, &[1]);
        assert!(h.is_registered(0));
        assert!(!h.is_registered(1));
        assert_eq!(
            h.bind(1, &host_buf(8)).unwrap_err(),
            ShmemError::RegistrationFailed { rank: 1 }
        );
        assert_eq!(
            h.translate(1, 0, 8).unwrap_err(),
            ShmemError::RegistrationFailed { rank: 1 }
        );
    }
}
