//! `shmem.*` metrics instruments.

use parcomm_obs::{Counter, MetricsRegistry};

/// Metrics of the symmetric-heap backend. Pure atomics — digest-neutral.
/// Cheap to clone; clones share counters.
#[derive(Clone, Debug)]
pub struct ShmemInstruments {
    /// Buffers adopted into the heap (`shmem.binds`).
    pub binds: Counter,
    /// Device-initiated one-sided puts issued (`shmem.puts`).
    pub puts: Counter,
    /// Completion signals delivered (`shmem.signals`).
    pub signals: Counter,
    /// Payload bytes moved by shmem puts (`shmem.bytes`).
    pub bytes: Counter,
    /// Channel sides that requested shmem but were demoted to the
    /// Progression Engine by the route/registration rules
    /// (`shmem.fallbacks`).
    pub fallbacks: Counter,
    /// rkey exchanges a shmem channel did **not** perform: the classic
    /// protocol packs one rkey each for the data and flag regions per
    /// channel, so every shmem channel setup adds 2
    /// (`shmem.rkey_exchanges_avoided`).
    pub rkey_exchanges_avoided: Counter,
    /// Put attempts retried after a fabric routing failure
    /// (`shmem.put_retries`).
    pub put_retries: Counter,
    /// Puts that exhausted their retry budget (`shmem.put_failures`).
    pub put_failures: Counter,
}

impl ShmemInstruments {
    pub(crate) fn new(registry: &MetricsRegistry) -> Self {
        ShmemInstruments {
            binds: registry.counter("shmem.binds"),
            puts: registry.counter("shmem.puts"),
            signals: registry.counter("shmem.signals"),
            bytes: registry.counter("shmem.bytes"),
            fallbacks: registry.counter("shmem.fallbacks"),
            rkey_exchanges_avoided: registry.counter("shmem.rkey_exchanges_avoided"),
            put_retries: registry.counter("shmem.put_retries"),
            put_failures: registry.counter("shmem.put_failures"),
        }
    }
}
