//! # parcomm-shmem — the symmetric-heap one-sided backend
//!
//! The third copy mechanism of the partitioned stack (beside the host
//! Progression Engine and Kernel Copy): an NVSHMEM-style **symmetric
//! memory heap** registered once at world construction, plus the typed
//! error surface of device-initiated `put`/`signal` operations that
//! translate symmetric offsets locally and hit the fabric without a host
//! PE hop or any rkey exchange.
//!
//! This crate owns the heap model ([`SymmetricHeap`]), the typed
//! [`ShmemError`], and the `shmem.*` metrics ([`ShmemInstruments`]). The
//! device timing model lives in `parcomm-gpu` (put-issue/signal costs and
//! the shmem emission fault schedule); the wire path is composed in
//! `parcomm-core`, which drives the fabric directly from the device
//! emission — no UCP endpoint, no progression-engine hook.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod heap;
mod obs;

pub use error::ShmemError;
pub use heap::{SymmetricHeap, SHMEM_ALIGN};
pub use obs::ShmemInstruments;
