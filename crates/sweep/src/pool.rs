//! A first-party work-stealing thread pool for embarrassingly parallel
//! sweep cells (no rayon/crossbeam — the workspace is hermetic).
//!
//! All cells are known up front, so the pool is deliberately simple: jobs
//! are dealt round-robin into per-worker deques; a worker pops from the
//! front of its own deque and, when empty, steals from the *back* of the
//! first non-empty sibling (opposite ends keep contention low without
//! unsafe code — the deques are plain `Mutex<VecDeque>`s). Because no job
//! ever enqueues another, a fully empty scan means the pool is drained
//! and the worker retires; no condvar or shutdown flag is needed.
//!
//! Each cell runs under [`std::panic::catch_unwind`], so one poisoned
//! cell fails *that cell* (its panic payload is surfaced as a `String`)
//! without aborting siblings or the campaign.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;

use parcomm_sim::Mutex;

/// A boxed sweep cell body.
pub(crate) type Job<T> = Box<dyn FnOnce() -> T + Send>;

/// A worker's deque of `(cell index, job)` pairs awaiting execution.
type Deque<T> = Mutex<VecDeque<(usize, Job<T>)>>;

/// Run `jobs` on up to `threads` workers, invoking `on_complete(index,
/// result)` on the *calling* thread as each cell finishes. Completion
/// order is nondeterministic above one thread; the index identifies the
/// cell, and deterministic consumers must reassemble by it (see
/// `SweepSpec::run`). With one thread the jobs run inline, in order.
pub(crate) fn execute<T: Send>(
    threads: usize,
    jobs: Vec<Job<T>>,
    mut on_complete: impl FnMut(usize, Result<T, String>),
) {
    let n = jobs.len();
    if n == 0 {
        return;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        for (idx, job) in jobs.into_iter().enumerate() {
            on_complete(idx, run_cell(job));
        }
        return;
    }

    let deques: Vec<Deque<T>> = (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (idx, job) in jobs.into_iter().enumerate() {
        deques[idx % threads].lock().push_back((idx, job));
    }
    let deques = &deques;
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel();
        for w in 0..threads {
            let tx = tx.clone();
            s.spawn(move || {
                while let Some((idx, job)) = next_job(deques, w) {
                    // The receiver disappears only if the caller panicked
                    // out of `on_complete`; retire quietly in that case.
                    if tx.send((idx, run_cell(job))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        while let Ok((idx, result)) = rx.recv() {
            on_complete(idx, result);
        }
    });
}

/// Pop from worker `w`'s own front, else steal from the back of the first
/// non-empty sibling, else report the pool drained.
fn next_job<T>(deques: &[Deque<T>], w: usize) -> Option<(usize, Job<T>)> {
    if let Some(job) = deques[w].lock().pop_front() {
        return Some(job);
    }
    for off in 1..deques.len() {
        if let Some(job) = deques[(w + off) % deques.len()].lock().pop_back() {
            return Some(job);
        }
    }
    None
}

/// Run one cell, converting a panic into its payload message.
fn run_cell<T>(job: Job<T>) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(job)).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "cell panicked with a non-string payload".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn squares(n: usize) -> Vec<Job<usize>> {
        (0..n).map(|i| Box::new(move || i * i) as Job<usize>).collect()
    }

    #[test]
    fn every_job_completes_exactly_once_at_any_width() {
        for threads in [1usize, 2, 3, 8, 64] {
            let mut seen = vec![0u32; 17];
            execute(threads, squares(17), |idx, res| {
                assert_eq!(res, Ok(idx * idx));
                seen[idx] += 1;
            });
            assert!(seen.iter().all(|&c| c == 1), "threads={threads}: {seen:?}");
        }
    }

    #[test]
    fn stealing_drains_an_imbalanced_deal() {
        // One slow cell pins a worker; the fast cells dealt to it must be
        // stolen by the idle workers for the run to finish promptly.
        let done = AtomicUsize::new(0);
        let jobs: Vec<Job<()>> = (0..32)
            .map(|i| {
                Box::new(move || {
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                    }
                }) as Job<()>
            })
            .collect();
        execute(4, jobs, |_, res| {
            assert!(res.is_ok());
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn panic_payloads_become_strings() {
        let jobs: Vec<Job<u32>> = vec![
            Box::new(|| panic!("boom {}", 7)),
            Box::new(|| 42),
            Box::new(|| panic!("static boom")),
        ];
        let mut results = vec![None; 3];
        execute(2, jobs, |idx, res| results[idx] = Some(res));
        assert_eq!(results[0], Some(Err("boom 7".to_string())));
        assert_eq!(results[1], Some(Ok(42)));
        assert_eq!(results[2], Some(Err("static boom".to_string())));
    }

    #[test]
    fn empty_job_list_is_a_no_op() {
        execute(8, Vec::<Job<()>>::new(), |_, _| panic!("no cells to complete"));
    }
}
