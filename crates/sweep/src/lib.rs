//! # parcomm-sweep — deterministic parallel experiment engine
//!
//! Every result this workspace produces — the paper's Fig. 2–11
//! reproductions, the ablation grids, `parcomm-testkit` seed sweeps, and
//! the faultsim chaos campaigns — is a grid of fully independent
//! deterministic simulations. This crate fans those cells out across
//! cores **without sacrificing bit-for-bit reproducibility**, using only
//! first-party code (no rayon/crossbeam — the workspace is hermetic):
//!
//! - an internal work-stealing thread pool over `Mutex<VecDeque>`
//!   deques; one panicking cell fails that cell, not the campaign.
//! - [`SweepSpec`]: a campaign as an ordered grid of keyed cells, each an
//!   independent closure. [`SweepSpec::run`] aggregates by cell index in
//!   insertion order, so output is **byte-identical regardless of thread
//!   count or completion order** (each cell is itself a deterministic
//!   simulation — `(program, seed)` fixes its result, and nothing is
//!   shared between cells).
//! - [`JsonlSink`]: a streaming JSON-lines result sink, flushed per cell,
//!   with resume — [`SweepSpec::run_with_sink`] re-runs only the cells a
//!   killed campaign had not yet completed.
//!
//! Thread count selection is shared by every binary via [`threads`]:
//! `--threads N` flag, then `PARCOMM_THREADS`, then available
//! parallelism.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod pool;
pub mod sink;
pub mod spec;

pub use sink::{CellValue, JsonlSink};
pub use spec::{CellError, SweepResults, SweepSpec};

/// Worker-thread count for a sweep-running binary: the `--threads N` (or
/// `--threads=N`) command-line flag if present, else the
/// `PARCOMM_THREADS` environment variable, else
/// [`std::thread::available_parallelism`]. Always at least 1.
pub fn threads() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        let explicit = if arg == "--threads" {
            args.get(i + 1).map(String::as_str)
        } else {
            arg.strip_prefix("--threads=")
        };
        if let Some(n) = explicit.and_then(|v| v.parse::<usize>().ok()) {
            return n.max(1);
        }
    }
    if let Some(n) =
        std::env::var("PARCOMM_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}
