//! Streaming JSON-lines result sink with resume support.
//!
//! A campaign appends one line per *successfully* completed cell —
//! `{"key": "...", "value": <json>}` — flushing after each line so a
//! killed run loses at most the line being written. On restart,
//! [`JsonlSink::open`] replays the file, skipping any line that does not
//! parse (a truncated tail from the previous crash); the cells already on
//! disk are restored instead of re-run (see `SweepSpec::run_with_sink`).
//!
//! Values cross the file boundary via the [`CellValue`] trait. `u64`
//! values (trace digests) are encoded as `0x…` hex *strings* because they
//! exceed the 2^53 precision of JSON numbers.

use std::io::Write;
use std::path::{Path, PathBuf};

use parcomm_obs::json::{self, JsonValue};

/// A sweep cell result that can round-trip through the JSON-lines sink.
pub trait CellValue: Sized {
    /// Encode the value for the sink.
    fn to_json(&self) -> JsonValue;
    /// Decode a sink value; `None` re-runs the cell (e.g. after a schema
    /// change), so decoding must be strict rather than lossy.
    fn from_json(v: &JsonValue) -> Option<Self>;
}

impl CellValue for f64 {
    fn to_json(&self) -> JsonValue {
        if self.is_finite() {
            JsonValue::Number(*self)
        } else {
            JsonValue::Null
        }
    }
    fn from_json(v: &JsonValue) -> Option<Self> {
        match v {
            JsonValue::Number(n) => Some(*n),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }
}

impl CellValue for u64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(format!("{self:#018x}"))
    }
    fn from_json(v: &JsonValue) -> Option<Self> {
        let s = v.as_str()?.strip_prefix("0x")?;
        u64::from_str_radix(s, 16).ok()
    }
}

impl CellValue for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
    fn from_json(v: &JsonValue) -> Option<Self> {
        match v {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl CellValue for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(self.clone())
    }
    fn from_json(v: &JsonValue) -> Option<Self> {
        v.as_str().map(str::to_string)
    }
}

impl<T: CellValue> CellValue for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(CellValue::to_json).collect())
    }
    fn from_json(v: &JsonValue) -> Option<Self> {
        v.as_array()?.iter().map(T::from_json).collect()
    }
}

/// An append-only JSON-lines file of completed `(key, value)` cells.
pub struct JsonlSink {
    path: PathBuf,
    file: std::fs::File,
    entries: Vec<(String, JsonValue)>,
}

impl JsonlSink {
    /// Open (creating if absent) a sink at `path`, replaying any cells a
    /// previous run completed. Lines that fail to parse — the truncated
    /// tail of a killed run — are skipped; if the file does not end in a
    /// newline, one is appended first so new lines never splice onto the
    /// partial tail. The first occurrence of a key wins.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut entries: Vec<(String, JsonValue)> = Vec::new();
        let mut needs_newline = false;
        if let Ok(text) = std::fs::read_to_string(&path) {
            needs_newline = !text.is_empty() && !text.ends_with('\n');
            for line in text.lines() {
                let Ok(v) = json::parse(line) else { continue };
                let (Some(key), Some(value)) =
                    (v.get("key").and_then(JsonValue::as_str), v.get("value"))
                else {
                    continue;
                };
                if !entries.iter().any(|(k, _)| k == key) {
                    entries.push((key.to_string(), value.clone()));
                }
            }
        }
        let mut file =
            std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
        if needs_newline {
            file.write_all(b"\n")?;
        }
        Ok(JsonlSink { path, file, entries })
    }

    /// Path the sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of completed cells on record.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no cell has completed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded value for `key`, if that cell already completed.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Keys of every completed cell, in file order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Record a completed cell: append one line and flush it to disk.
    /// A key appended twice keeps its first value on replay.
    pub fn append(&mut self, key: &str, value: JsonValue) -> std::io::Result<()> {
        let line = JsonValue::Object(vec![
            ("key".to_string(), JsonValue::String(key.to_string())),
            ("value".to_string(), value.clone()),
        ])
        .render();
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        if !self.entries.iter().any(|(k, _)| k == key) {
            self.entries.push((key.to_string(), value));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("parcomm-sweep-{}-{name}.jsonl", std::process::id()))
    }

    #[test]
    fn append_then_reopen_restores_entries() {
        let path = temp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = JsonlSink::open(&path).expect("open");
            assert!(sink.is_empty());
            sink.append("a", 1.5f64.to_json()).expect("append");
            sink.append("dig", 0xdead_beef_u64.to_json()).expect("append");
        }
        let sink = JsonlSink::open(&path).expect("reopen");
        assert_eq!(sink.len(), 2);
        assert_eq!(f64::from_json(sink.get("a").expect("a")), Some(1.5));
        assert_eq!(u64::from_json(sink.get("dig").expect("dig")), Some(0xdead_beef));
        assert_eq!(sink.keys().collect::<Vec<_>>(), vec!["a", "dig"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_tail_is_skipped_and_never_spliced() {
        let path = temp("truncated");
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = JsonlSink::open(&path).expect("open");
            sink.append("good", vec![1.0f64, 2.0].to_json()).expect("append");
        }
        // Simulate a crash mid-write: a partial line with no newline.
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("{\"key\":\"half\",\"val");
        std::fs::write(&path, &text).expect("write");

        let mut sink = JsonlSink::open(&path).expect("reopen");
        assert_eq!(sink.len(), 1, "partial line must not count as completed");
        assert!(sink.get("half").is_none());
        sink.append("next", 3.0f64.to_json()).expect("append");

        let sink = JsonlSink::open(&path).expect("third open");
        assert_eq!(
            Vec::<f64>::from_json(sink.get("good").expect("good")),
            Some(vec![1.0, 2.0])
        );
        assert_eq!(f64::from_json(sink.get("next").expect("next")), Some(3.0));
        assert_eq!(sink.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn first_occurrence_of_a_key_wins() {
        let path = temp("dup");
        let _ = std::fs::remove_file(&path);
        std::fs::write(
            &path,
            "{\"key\":\"k\",\"value\":1.0}\n{\"key\":\"k\",\"value\":2.0}\n",
        )
        .expect("write");
        let sink = JsonlSink::open(&path).expect("open");
        assert_eq!(sink.len(), 1);
        assert_eq!(f64::from_json(sink.get("k").expect("k")), Some(1.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cell_values_round_trip() {
        assert_eq!(u64::from_json(&u64::MAX.to_json()), Some(u64::MAX));
        assert_eq!(bool::from_json(&true.to_json()), Some(true));
        assert_eq!(String::from_json(&"hé\"llo".to_string().to_json()), Some("hé\"llo".into()));
        let v = vec!["a".to_string(), "b".to_string()];
        assert_eq!(Vec::<String>::from_json(&v.to_json()), Some(v));
        assert!(f64::from_json(&f64::INFINITY.to_json()).expect("null→nan").is_nan());
        assert_eq!(u64::from_json(&JsonValue::Number(3.0)), None);
    }
}
