//! Keyed sweep specifications and their deterministic aggregation.
//!
//! A [`SweepSpec`] describes a campaign as an *ordered* grid of keyed
//! cells, each an independent closure (one seed, one parameter point, one
//! fault plan…). [`SweepSpec::run`] executes the cells on the
//! work-stealing pool and reassembles the results **by cell index in
//! insertion order**, so the aggregated output is byte-identical
//! regardless of thread count or completion order. Insertion order — not
//! a lexical key sort — is the contract, because it is the order the
//! serial loops this engine replaced produced their tables in.
//!
//! A panicking cell surfaces as a typed [`CellError`] for that key;
//! sibling cells are unaffected.

use crate::pool::{self, Job};
use crate::sink::{CellValue, JsonlSink};

/// A failed sweep cell: the cell's key plus its panic payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellError {
    /// Key of the cell that failed.
    pub key: String,
    /// Panic payload (or other failure description).
    pub message: String,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep cell '{}' failed: {}", self.key, self.message)
    }
}

impl std::error::Error for CellError {}

/// An ordered, keyed grid of independent experiment cells.
pub struct SweepSpec<T> {
    cells: Vec<(String, Job<T>)>,
}

impl<T> Default for SweepSpec<T> {
    fn default() -> Self {
        SweepSpec { cells: Vec::new() }
    }
}

impl<T: Send> SweepSpec<T> {
    /// An empty spec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a cell. Keys must be unique — they identify cells in the
    /// resume sink and in error reports.
    pub fn cell(
        &mut self,
        key: impl Into<String>,
        body: impl FnOnce() -> T + Send + 'static,
    ) -> &mut Self {
        let key = key.into();
        assert!(
            !self.cells.iter().any(|(k, _)| *k == key),
            "duplicate sweep cell key: {key}"
        );
        self.cells.push((key, Box::new(body)));
        self
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the spec has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Run every cell on up to `threads` workers and aggregate
    /// deterministically (insertion order).
    pub fn run(self, threads: usize) -> SweepResults<T> {
        self.run_observed(threads, |_, _| {})
    }

    /// [`SweepSpec::run`], additionally invoking `observe(key, result)`
    /// on the calling thread as each cell finishes — completion order,
    /// which is nondeterministic above one thread; use it for streaming
    /// progress or sinks, never for ordered output.
    pub fn run_observed(
        self,
        threads: usize,
        mut observe: impl FnMut(&str, &Result<T, CellError>),
    ) -> SweepResults<T> {
        let (keys, jobs): (Vec<String>, Vec<Job<T>>) = self.cells.into_iter().unzip();
        let mut slots: Vec<Option<Result<T, CellError>>> =
            (0..keys.len()).map(|_| None).collect();
        pool::execute(threads, jobs, |idx, res| {
            let res = res.map_err(|message| CellError { key: keys[idx].clone(), message });
            observe(&keys[idx], &res);
            slots[idx] = Some(res);
        });
        let cells = keys
            .into_iter()
            .zip(slots)
            .map(|(key, slot)| (key, slot.expect("pool completes every cell")))
            .collect();
        SweepResults { cells }
    }
}

enum Restored<T> {
    Value(T),
    Pending(usize),
}

impl<T: Send + CellValue> SweepSpec<T> {
    /// Run with resume: cells whose key is already recorded in `sink` are
    /// restored from disk instead of re-run; cells that complete are
    /// appended to the sink as they finish. The aggregated results are
    /// identical to a fresh [`SweepSpec::run`] (assuming the sink came
    /// from the same spec). Failed cells are *not* persisted, so a rerun
    /// retries exactly the missing ones.
    pub fn run_with_sink(
        self,
        threads: usize,
        sink: &mut JsonlSink,
    ) -> std::io::Result<SweepResults<T>> {
        let mut fresh: Vec<(String, Job<T>)> = Vec::new();
        let mut layout: Vec<(String, Restored<T>)> = Vec::new();
        for (key, job) in self.cells {
            match sink.get(&key).and_then(T::from_json) {
                Some(v) => layout.push((key, Restored::Value(v))),
                None => {
                    layout.push((key.clone(), Restored::Pending(fresh.len())));
                    fresh.push((key, job));
                }
            }
        }
        let mut io_err: Option<std::io::Error> = None;
        let ran = SweepSpec { cells: fresh }.run_observed(threads, |key, res| {
            if let Ok(v) = res {
                if io_err.is_none() {
                    if let Err(e) = sink.append(key, v.to_json()) {
                        io_err = Some(e);
                    }
                }
            }
        });
        if let Some(e) = io_err {
            return Err(e);
        }
        let mut ran: Vec<Option<Result<T, CellError>>> =
            ran.cells.into_iter().map(|(_, r)| Some(r)).collect();
        let cells = layout
            .into_iter()
            .map(|(key, slot)| match slot {
                Restored::Value(v) => (key, Ok(v)),
                Restored::Pending(i) => {
                    (key, ran[i].take().expect("each pending cell resolves once"))
                }
            })
            .collect();
        Ok(SweepResults { cells })
    }
}

/// Aggregated campaign results, in spec insertion order.
pub struct SweepResults<T> {
    cells: Vec<(String, Result<T, CellError>)>,
}

impl<T> SweepResults<T> {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the campaign had no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterate `(key, result)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Result<T, CellError>)> {
        self.cells.iter().map(|(k, r)| (k.as_str(), r))
    }

    /// The result for `key`.
    pub fn get(&self, key: &str) -> Option<&Result<T, CellError>> {
        self.cells.iter().find(|(k, _)| k == key).map(|(_, r)| r)
    }

    /// Every cell error, in insertion order.
    pub fn errors(&self) -> impl Iterator<Item = &CellError> {
        self.cells.iter().filter_map(|(_, r)| r.as_ref().err())
    }

    /// Consume into `(key, result)` pairs, in insertion order.
    pub fn into_cells(self) -> Vec<(String, Result<T, CellError>)> {
        self.cells
    }

    /// Consume into the cell values in insertion order, or the first
    /// [`CellError`] if any cell failed.
    pub fn into_values(self) -> Result<Vec<T>, CellError> {
        self.cells.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> SweepSpec<f64> {
        let mut spec = SweepSpec::new();
        // Deliberately key so that lexical order differs from insertion
        // order (grid=1024 sorts before grid=2): insertion order must win.
        for i in (0..n).rev() {
            let v = 2u64 << i;
            spec.cell(format!("grid={v}"), move || v as f64 * 1.5);
        }
        spec
    }

    fn rendered(results: SweepResults<f64>) -> String {
        results
            .into_cells()
            .into_iter()
            .map(|(k, r)| format!("{k} -> {:?}\n", r.expect("ok")))
            .collect()
    }

    #[test]
    fn aggregation_is_identical_across_thread_counts() {
        let serial = rendered(grid(12).run(1));
        for threads in [2usize, 8] {
            assert_eq!(rendered(grid(12).run(threads)), serial, "threads={threads}");
        }
        assert!(serial.starts_with("grid=4096 -> "), "insertion order, not lexical");
    }

    #[test]
    fn panicking_cell_yields_typed_error_without_aborting_siblings() {
        let mut spec = SweepSpec::new();
        for i in 0..8u32 {
            spec.cell(format!("seed={i}"), move || {
                if i == 3 {
                    panic!("injected failure at seed 3");
                }
                f64::from(i)
            });
        }
        let results = spec.run(4);
        let errs: Vec<_> = results.errors().cloned().collect();
        assert_eq!(
            errs,
            vec![CellError {
                key: "seed=3".to_string(),
                message: "injected failure at seed 3".to_string()
            }]
        );
        assert_eq!(results.iter().filter(|(_, r)| r.is_ok()).count(), 7);
        assert_eq!(results.get("seed=7").and_then(|r| r.as_ref().ok()), Some(&7.0));
        assert!(results.into_values().is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate sweep cell key")]
    fn duplicate_keys_are_rejected() {
        let mut spec = SweepSpec::new();
        spec.cell("k", || 0.0).cell("k", || 1.0);
    }

    #[test]
    fn observer_sees_every_completion() {
        let mut spec = SweepSpec::new();
        for i in 0..5u32 {
            spec.cell(format!("c{i}"), move || f64::from(i));
        }
        let mut seen = Vec::new();
        let results = spec.run_observed(3, |key, res| {
            seen.push((key.to_string(), res.is_ok()));
        });
        assert_eq!(seen.len(), 5);
        assert!(seen.iter().all(|(_, ok)| *ok));
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn run_with_sink_resumes_only_missing_cells() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let path = std::env::temp_dir()
            .join(format!("parcomm-sweep-{}-resume.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let runs = Arc::new(AtomicUsize::new(0));

        let build = |runs: Arc<AtomicUsize>| {
            let mut spec = SweepSpec::new();
            for i in 0..6u64 {
                let runs = runs.clone();
                spec.cell(format!("cell={i}"), move || {
                    runs.fetch_add(1, Ordering::Relaxed);
                    i as f64 * 0.5
                });
            }
            spec
        };

        let mut sink = JsonlSink::open(&path).expect("open");
        let first = build(runs.clone())
            .run_with_sink(2, &mut sink)
            .expect("first run")
            .into_values()
            .expect("values");
        assert_eq!(runs.load(Ordering::Relaxed), 6);

        // Drop the last completed line to simulate a truncated sink.
        let text = std::fs::read_to_string(&path).expect("read");
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).expect("rewrite");

        let mut sink = JsonlSink::open(&path).expect("reopen");
        assert_eq!(sink.len(), 5);
        let second = build(runs.clone())
            .run_with_sink(2, &mut sink)
            .expect("second run")
            .into_values()
            .expect("values");
        assert_eq!(runs.load(Ordering::Relaxed), 7, "exactly one missing cell re-ran");
        assert_eq!(first, second, "resumed output identical to the fresh run");
        let _ = std::fs::remove_file(&path);
    }
}
