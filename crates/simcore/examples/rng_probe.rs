//! Quick probe: first normal draws for the Table 1 seeds.
use parcomm_sim::SimRng;
fn main() {
    let mut firsts = Vec::new();
    for s in 0..10u64 {
        let mut r = SimRng::seeded(0x7AB1 ^ s);
        let mut draws: Vec<f64> = (0..6).map(|_| r.normal(17.2, 10.2).max(0.0)).collect();
        firsts.push(draws[0]);
        draws.truncate(6);
        println!("seed {s}: {draws:?}");
    }
    println!("mean of first draws: {}", firsts.iter().sum::<f64>() / firsts.len() as f64);
}
