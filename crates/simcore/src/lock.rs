//! Poison-tolerant lock wrappers over `std::sync`.
//!
//! The workspace builds with **zero external dependencies** (see the
//! "Hermetic build" section of `DESIGN.md`), so instead of `parking_lot`
//! the simulation uses this thin wrapper around [`std::sync::Mutex`] with a
//! `parking_lot`-style API: [`Mutex::lock`] returns the guard directly and
//! never panics on poisoning.
//!
//! Poison tolerance is the right semantics here: simulation process panics
//! are already caught and converted to [`crate::SimError::ProcessPanic`] by
//! the scheduler, so a poisoned lock only means "some process panicked while
//! holding the guard" — the scheduler still needs to read the shared state
//! to report the failure instead of cascading `PoisonError` panics.

use std::sync::MutexGuard;

/// A mutual-exclusion lock with a `parking_lot`-flavoured API on top of
/// [`std::sync::Mutex`]: `lock()` returns the guard directly, recovering
/// from poisoning instead of panicking.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the calling thread until it is available.
    ///
    /// Unlike `std`, a poisoned lock is recovered rather than propagated —
    /// see the module docs for why that is sound in this codebase.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A std mutex would now return PoisonError; ours recovers.
        *m.lock() += 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
