//! One-shot and resettable events: the basic wake-up primitive.
//!
//! An [`Event`] starts unset. Processes block on it with `Ctx::wait`;
//! callbacks and other processes fire it with [`Event::set`]. Setting an
//! already-set event is a no-op. Events can be `reset` for reuse across
//! communication epochs (e.g. per-iteration partition-arrival flags); the
//! caller is responsible for making sure no one is still waiting on the old
//! epoch when resetting, which the partitioned runtime guarantees by
//! quiescing in `MPI_Wait` first.

use std::sync::Arc;

use crate::lock::Mutex;

use crate::sched::{ProcessId, SimHandle};
use crate::time::SimTime;

#[derive(Default)]
struct EventState {
    set: bool,
    set_at: Option<SimTime>,
    waiters: Vec<(ProcessId, u64)>,
    /// Optional label surfaced in deadlock diagnostics ("what was this
    /// process waiting on?"). Never affects scheduling.
    label: Option<String>,
}

/// A fireable flag that processes can block on. Cheap to clone (shared).
#[derive(Clone, Default)]
pub struct Event {
    inner: Arc<Mutex<EventState>>,
}

impl Event {
    /// Create a new, unset event.
    pub fn new() -> Self {
        Event::default()
    }

    /// Create a new, unset event carrying a diagnostic label (shown in
    /// [`crate::SimError::Deadlock`] wait-for reports).
    pub fn named(label: impl Into<String>) -> Self {
        let ev = Event::default();
        ev.inner.lock().label = Some(label.into());
        ev
    }

    /// Attach or replace the diagnostic label.
    pub fn set_label(&self, label: impl Into<String>) {
        self.inner.lock().label = Some(label.into());
    }

    /// The diagnostic label, if any.
    pub fn label(&self) -> Option<String> {
        self.inner.lock().label.clone()
    }

    /// True if the event has fired (and has not been reset since).
    pub fn is_set(&self) -> bool {
        self.inner.lock().set
    }

    /// The virtual instant at which the event was last set, if any.
    pub fn set_at(&self) -> Option<SimTime> {
        self.inner.lock().set_at
    }

    /// Fire the event at the current virtual time, waking all waiters.
    /// Idempotent.
    pub fn set(&self, h: &SimHandle) {
        let waiters = {
            let mut st = self.inner.lock();
            if st.set {
                return;
            }
            st.set = true;
            st.set_at = Some(h.now());
            std::mem::take(&mut st.waiters)
        };
        for (pid, epoch) in waiters {
            h.wake(pid, epoch);
        }
    }

    /// Clear the event for reuse. Any registered waiters are dropped; the
    /// caller must guarantee none exist (see type-level docs).
    pub fn reset(&self) {
        let mut st = self.inner.lock();
        debug_assert!(
            st.waiters.is_empty(),
            "Event::reset with waiters still registered"
        );
        st.set = false;
        st.set_at = None;
        st.waiters.clear();
    }

    /// Register a waiter. Returns `false` if the event is already set (the
    /// caller must then self-wake).
    pub(crate) fn register_waiter(&self, pid: ProcessId, epoch: u64) -> bool {
        let mut st = self.inner.lock();
        if st.set {
            return false;
        }
        st.waiters.push((pid, epoch));
        true
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.lock();
        f.debug_struct("Event")
            .field("set", &st.set)
            .field("waiters", &st.waiters.len())
            .finish()
    }
}

/// A monotonically increasing counter processes can wait on: fires waiters
/// whenever the count reaches their threshold. Used for partition-arrival
/// accounting ("wake me when `n` partitions have arrived").
#[derive(Clone, Default)]
pub struct CountEvent {
    inner: Arc<Mutex<CountState>>,
}

#[derive(Default)]
struct CountState {
    count: u64,
    /// (threshold, pid, epoch)
    waiters: Vec<(u64, ProcessId, u64)>,
    /// Optional label surfaced in deadlock diagnostics.
    label: Option<String>,
}

impl CountEvent {
    /// New counter starting at zero.
    pub fn new() -> Self {
        CountEvent::default()
    }

    /// New counter carrying a diagnostic label (shown in
    /// [`crate::SimError::Deadlock`] wait-for reports).
    pub fn named(label: impl Into<String>) -> Self {
        let ev = CountEvent::default();
        ev.inner.lock().label = Some(label.into());
        ev
    }

    /// Attach or replace the diagnostic label.
    pub fn set_label(&self, label: impl Into<String>) {
        self.inner.lock().label = Some(label.into());
    }

    /// The diagnostic label, if any.
    pub fn label(&self) -> Option<String> {
        self.inner.lock().label.clone()
    }

    /// Current count.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Increment by `n`, waking any waiter whose threshold is now met.
    pub fn add(&self, h: &SimHandle, n: u64) {
        let woken = {
            let mut st = self.inner.lock();
            st.count += n;
            let count = st.count;
            let (ready, rest): (Vec<_>, Vec<_>) =
                std::mem::take(&mut st.waiters).into_iter().partition(|(t, _, _)| *t <= count);
            st.waiters = rest;
            ready
        };
        for (_, pid, epoch) in woken {
            h.wake(pid, epoch);
        }
    }

    /// Reset the count to zero (between communication epochs).
    pub fn reset(&self) {
        let mut st = self.inner.lock();
        debug_assert!(st.waiters.is_empty(), "CountEvent::reset with waiters");
        st.count = 0;
    }

    /// Returns `false` if the threshold is already met (caller self-wakes).
    pub(crate) fn register_waiter(&self, threshold: u64, pid: ProcessId, epoch: u64) -> bool {
        let mut st = self.inner.lock();
        if st.count >= threshold {
            return false;
        }
        st.waiters.push((threshold, pid, epoch));
        true
    }
}

impl std::fmt::Debug for CountEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.lock();
        f.debug_struct("CountEvent")
            .field("count", &st.count)
            .field("waiters", &st.waiters.len())
            .finish()
    }
}

