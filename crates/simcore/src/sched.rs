//! The discrete-event scheduler.
//!
//! ## Execution model
//!
//! The simulation is *process-oriented* (SimGrid / SimPy style): user code is
//! written as ordinary blocking Rust running in **simulation processes**, each
//! backed by its own OS thread, while fine-grained hardware actions (DMA
//! completions, flag writes) are **scheduled callbacks** that run directly on
//! the scheduler thread.
//!
//! At any wall-clock instant, *at most one* simulation process is executing;
//! the scheduler thread and that process hand control back and forth through
//! rendezvous channels. Virtual time only advances inside the scheduler loop,
//! between process steps, which makes the simulation deterministic: a given
//! program + seed always produces the identical event trace.
//!
//! ## Shutdown semantics
//!
//! Processes are either *regular* or *daemon*. The simulation completes when
//! every regular process has finished. Daemons (progression engines, pollers)
//! are then woken one final time with the global shutdown flag set so that
//! their `while !ctx.is_shutdown()` loops can exit cleanly.
//!
//! ## Deadlock detection
//!
//! If no timed work remains but regular processes are still blocked, the
//! scheduler aborts with a diagnostic listing every blocked process by name —
//! turning would-be hangs into test failures.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use std::sync::mpsc::{channel, Receiver, Sender};

use crate::lock::Mutex;

use crate::error::{BlockedProcess, SimError};
use crate::event::Event;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Identifier of a simulation process (dense, assigned at spawn).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ProcessId(pub(crate) u64);

/// A callback scheduled to run on the scheduler thread at a virtual instant.
pub type Callback = Box<dyn FnOnce(&SimHandle) + Send + 'static>;

/// What an entry in the event queue does when its time arrives.
enum QueueItem {
    /// Resume process `pid` if it is still parked with the given epoch.
    /// Stale epochs (the process was woken earlier by an event) are ignored.
    Resume { pid: ProcessId, epoch: u64 },
    /// Run a closure on the scheduler thread.
    Callback(Callback),
}

/// Message a process sends back to the scheduler when it yields.
pub(crate) enum YieldMsg {
    /// Park me; resume at `at` (advance) — epoch already bumped.
    AdvanceTo { pid: ProcessId, at: SimTime, epoch: u64 },
    /// Park me; something else (an event) will wake me. The pid is carried
    /// for trace debugging only.
    Blocked {
        #[allow(dead_code)]
        pid: ProcessId,
    },
    /// The process body returned (`Ok`) or panicked (`Err(message)`).
    Finished { pid: ProcessId, result: Result<(), String> },
}

struct ProcRecord {
    name: String,
    daemon: bool,
    resume_tx: Sender<()>,
    /// Bumped every time the process parks; used to discard stale timed wakes.
    park_epoch: u64,
    parked: bool,
    finished: bool,
    done: Event,
    join: Option<JoinHandle<()>>,
    /// Description of the primitive the process is currently blocked on
    /// (set by `Ctx` wait methods); surfaced in deadlock diagnostics.
    waiting_on: Option<String>,
}

/// Shared scheduler state. Lives behind `Arc` in [`SimHandle`] and `Ctx`.
pub(crate) struct SchedCore {
    pub(crate) state: Mutex<SchedState>,
    /// Processes report yields here; the scheduler blocks on the matching
    /// receiver (held by [`Simulation`] — `std` receivers are not `Sync`,
    /// and only the scheduler loop ever receives).
    pub(crate) yield_tx: Sender<YieldMsg>,
    /// Global shutdown flag: set once all regular processes have finished.
    shutdown: AtomicBool,
    /// Span tracing (disabled by default).
    pub(crate) trace: Trace,
}

pub(crate) struct SchedState {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<(SimTime, u64, QueueSlot)>>,
    items: HashMap<u64, QueueItem>,
    procs: HashMap<ProcessId, ProcRecord>,
    next_pid: u64,
    live_regular: usize,
    live_daemons: usize,
    pub(crate) rng: SimRng,
    events_processed: u64,
}

/// Heap key helper: items with identical timestamps pop in insertion order.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct QueueSlot(u64);

/// A cloneable capability handle onto the running simulation.
///
/// `SimHandle` is what scheduled callbacks receive, and what long-lived model
/// objects (GPU devices, network links, UCX workers) store so they can read
/// the clock, schedule callbacks, and fire [`Event`]s. It deliberately cannot
/// block: blocking is only possible from a process `Ctx`.
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) core: Arc<SchedCore>,
}

impl SimHandle {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.state.lock().now
    }

    /// True once every regular process has finished and daemons are being
    /// wound down.
    pub fn is_shutdown(&self) -> bool {
        self.core.shutdown.load(Ordering::Acquire)
    }

    /// Schedule `f` to run on the scheduler thread after `delay`.
    pub fn schedule_in(&self, delay: SimDuration, f: impl FnOnce(&SimHandle) + Send + 'static) {
        let mut st = self.core.state.lock();
        let at = st.now + delay;
        st.push(at, QueueItem::Callback(Box::new(f)));
    }

    /// Schedule `f` at an absolute virtual instant (must not be in the past).
    pub fn schedule_at(&self, at: SimTime, f: impl FnOnce(&SimHandle) + Send + 'static) {
        let mut st = self.core.state.lock();
        assert!(at >= st.now, "schedule_at: {at:?} is in the past (now {:?})", st.now);
        st.push(at, QueueItem::Callback(Box::new(f)));
    }

    /// Draw from the simulation's deterministic RNG.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut SimRng) -> T) -> T {
        f(&mut self.core.state.lock().rng)
    }

    /// Sample a normally distributed duration (clamped at zero) around
    /// `mean` with standard deviation `sd`, both in microseconds.
    pub fn jitter_us(&self, mean: f64, sd: f64) -> SimDuration {
        self.with_rng(|rng| SimDuration::from_micros_f64(rng.normal(mean, sd)))
    }

    /// The simulation's span trace (recording is a no-op until the trace
    /// is enabled via [`crate::Simulation::trace`]).
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    pub(crate) fn wake(&self, pid: ProcessId, epoch: u64) {
        let mut st = self.core.state.lock();
        let at = st.now;
        st.push(at, QueueItem::Resume { pid, epoch });
    }

}

impl SchedState {
    /// Enqueue `item` at `at`; the returned id can cancel it via
    /// [`cancel_queued`] before it fires.
    fn push(&mut self, at: SimTime, item: QueueItem) -> u64 {
        let id = self.seq;
        self.seq += 1;
        self.items.insert(id, item);
        self.queue.push(Reverse((at, id, QueueSlot(id))));
        id
    }
}

/// Statistics returned by [`Simulation::run`].
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual time at which the last event was processed.
    pub end_time: SimTime,
    /// Number of queue items (resumes + callbacks) processed.
    pub events_processed: u64,
    /// Number of processes that ran (regular + daemon).
    pub processes: u64,
}

/// Configuration for a [`Simulation`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for the deterministic RNG. Two runs with the same seed produce
    /// identical traces.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { seed: 0x5EED_CAFE }
    }
}

/// A configured simulation: spawn processes, then [`run`](Simulation::run).
pub struct Simulation {
    core: Arc<SchedCore>,
    yield_rx: Receiver<YieldMsg>,
    started: bool,
}

impl Simulation {
    /// Create a simulation with the given configuration.
    pub fn new(cfg: SimConfig) -> Self {
        let (yield_tx, yield_rx) = channel();
        let core = Arc::new(SchedCore {
            state: Mutex::new(SchedState {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                items: HashMap::new(),
                procs: HashMap::new(),
                next_pid: 0,
                live_regular: 0,
                live_daemons: 0,
                rng: SimRng::seeded(cfg.seed),
                events_processed: 0,
            }),
            yield_tx,
            shutdown: AtomicBool::new(false),
            trace: Trace::for_sim(cfg.seed),
        });
        Simulation { core, yield_rx, started: false }
    }

    /// Create a simulation with the default configuration (fixed seed).
    pub fn with_seed(seed: u64) -> Self {
        Simulation::new(SimConfig { seed })
    }

    /// Handle usable to pre-build model objects before `run`.
    pub fn handle(&self) -> SimHandle {
        SimHandle { core: self.core.clone() }
    }

    /// The simulation's span trace; call [`Trace::enable`] to record.
    pub fn trace(&self) -> Trace {
        self.core.trace.clone()
    }

    /// Spawn a regular root process starting at t = 0.
    pub fn spawn(&mut self, name: impl Into<String>, body: impl FnOnce(&mut crate::process::Ctx) + Send + 'static) {
        spawn_process(&self.core, name.into(), false, body);
    }

    /// Spawn a daemon root process starting at t = 0 (see module docs).
    pub fn spawn_daemon(
        &mut self,
        name: impl Into<String>,
        body: impl FnOnce(&mut crate::process::Ctx) + Send + 'static,
    ) {
        spawn_process(&self.core, name.into(), true, body);
    }

    /// Run the event loop to completion.
    ///
    /// Returns once every regular process has finished and the queue has
    /// drained. Fails with [`SimError::Deadlock`] if regular processes remain
    /// blocked with no timed work pending, or [`SimError::ProcessPanic`] if
    /// any process body panicked.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        assert!(!self.started, "Simulation::run called twice");
        self.started = true;
        let handle = SimHandle { core: self.core.clone() };
        let mut total_procs = 0u64;

        loop {
            // Pop the earliest live queue item, if any. Cancelled items
            // (e.g. timeout backstops whose wait completed early) left a
            // tombstone in the heap: skip them without advancing the clock
            // or the event count, so an armed-but-unused watchdog never
            // stretches the run's end time.
            let popped = {
                let mut st = self.core.state.lock();
                loop {
                    match st.queue.pop() {
                        Some(Reverse((at, id, _))) => {
                            if let Some(item) = st.items.remove(&id) {
                                st.now = at;
                                st.events_processed += 1;
                                break Some(item);
                            }
                        }
                        None => break None,
                    }
                }
            };

            match popped {
                Some(QueueItem::Callback(f)) => {
                    f(&handle);
                }
                Some(QueueItem::Resume { pid, epoch }) => {
                    let resume_tx = {
                        let mut st = self.core.state.lock();
                        match st.procs.get_mut(&pid) {
                            Some(p) if p.parked && !p.finished && p.park_epoch == epoch => {
                                p.parked = false;
                                Some(p.resume_tx.clone())
                            }
                            _ => None, // stale wake
                        }
                    };
                    let Some(tx) = resume_tx else { continue };
                    tx.send(()).expect("process resume channel closed");
                    // Let the process run until it yields again.
                    self.handle_yield(self.yield_rx.recv().expect("yield channel closed"))?;
                    total_procs = total_procs.max(self.core.state.lock().next_pid);
                }
                None => {
                    // Queue empty: either done, shutdown phase, or deadlock.
                    let (live_regular, live_daemons, mut blocked): (
                        usize,
                        usize,
                        Vec<BlockedProcess>,
                    ) = {
                        let st = self.core.state.lock();
                        let blocked = st
                            .procs
                            .values()
                            .filter(|p| p.parked && !p.finished)
                            .map(|p| BlockedProcess {
                                process: p.name.clone(),
                                waiting_on: p.waiting_on.clone(),
                            })
                            .collect();
                        (st.live_regular, st.live_daemons, blocked)
                    };

                    if live_regular == 0 && live_daemons == 0 {
                        break; // all done
                    }
                    if live_regular == 0 {
                        // Only daemons remain: initiate shutdown, wake them all.
                        self.begin_shutdown(&handle);
                        continue;
                    }
                    // HashMap iteration order is arbitrary; sort so the
                    // diagnostic is deterministic.
                    blocked.sort_by(|a, b| a.process.cmp(&b.process));
                    return Err(SimError::Deadlock { blocked });
                }
            }

            // If the last regular process just finished, wind daemons down.
            let need_shutdown = {
                let st = self.core.state.lock();
                st.live_regular == 0 && st.live_daemons > 0
            };
            if need_shutdown && !self.core.shutdown.load(Ordering::Acquire) {
                self.begin_shutdown(&handle);
            }
        }

        // Join all process threads (all have finished by now).
        let joins: Vec<JoinHandle<()>> = {
            let mut st = self.core.state.lock();
            st.procs.values_mut().filter_map(|p| p.join.take()).collect()
        };
        for j in joins {
            let _ = j.join();
        }

        let st = self.core.state.lock();
        Ok(SimReport {
            end_time: st.now,
            events_processed: st.events_processed,
            processes: st.next_pid,
        })
    }

    /// Set the shutdown flag and wake every parked daemon so its poll loop
    /// can observe the flag and exit.
    fn begin_shutdown(&self, _handle: &SimHandle) {
        self.core.shutdown.store(true, Ordering::Release);
        let mut st = self.core.state.lock();
        let now = st.now;
        let parked: Vec<(ProcessId, u64)> = st
            .procs
            .iter()
            .filter(|(_, p)| p.parked && !p.finished)
            .map(|(pid, p)| (*pid, p.park_epoch))
            .collect();
        for (pid, epoch) in parked {
            st.push(now, QueueItem::Resume { pid, epoch });
        }
    }

    fn handle_yield(&self, msg: YieldMsg) -> Result<(), SimError> {
        match msg {
            YieldMsg::AdvanceTo { pid, at, epoch } => {
                let mut st = self.core.state.lock();
                debug_assert!(at >= st.now);
                st.push(at, QueueItem::Resume { pid, epoch });
                Ok(())
            }
            YieldMsg::Blocked { .. } => Ok(()),
            YieldMsg::Finished { pid, result } => {
                let (name, done) = {
                    let mut st = self.core.state.lock();
                    let p = st.procs.get_mut(&pid).expect("unknown process finished");
                    p.finished = true;
                    p.parked = false;
                    let name = p.name.clone();
                    let done = p.done.clone();
                    if p.daemon {
                        st.live_daemons -= 1;
                    } else {
                        st.live_regular -= 1;
                    }
                    (name, done)
                };
                let handle = SimHandle { core: self.core.clone() };
                done.set(&handle);
                match result {
                    Ok(()) => Ok(()),
                    Err(msg) => Err(SimError::ProcessPanic { name, message: msg }),
                }
            }
        }
    }
}

/// Handle returned by dynamic spawn; lets other processes await completion.
#[derive(Clone)]
pub struct SpawnHandle {
    pub(crate) pid: ProcessId,
    /// Fired when the process body returns.
    pub done: Event,
}

impl SpawnHandle {
    /// The spawned process's id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }
}

/// Internal: register and start a process thread. The thread immediately
/// parks; the scheduler releases it via a `Resume` queue item at the current
/// virtual time.
pub(crate) fn spawn_process(
    core: &Arc<SchedCore>,
    name: String,
    daemon: bool,
    body: impl FnOnce(&mut crate::process::Ctx) + Send + 'static,
) -> SpawnHandle {
    let (resume_tx, resume_rx) = channel::<()>();
    let done = Event::named(format!("join '{name}'"));

    let pid = {
        let mut st = core.state.lock();
        let pid = ProcessId(st.next_pid);
        st.next_pid += 1;
        if daemon {
            st.live_daemons += 1;
        } else {
            st.live_regular += 1;
        }
        st.procs.insert(
            pid,
            ProcRecord {
                name: name.clone(),
                daemon,
                resume_tx,
                park_epoch: 0,
                parked: true,
                finished: false,
                done: done.clone(),
                join: None,
                waiting_on: None,
            },
        );
        let now = st.now;
        st.push(now, QueueItem::Resume { pid, epoch: 0 });
        pid
    };

    let core2 = core.clone();
    let thread_name = format!("sim:{name}");
    let join = std::thread::Builder::new()
        .name(thread_name)
        .spawn(move || {
            // Wait for the scheduler to start us.
            if resume_rx.recv().is_err() {
                return; // simulation torn down before we ran
            }
            let mut ctx = crate::process::Ctx::new(pid, core2.clone(), resume_rx);
            let result = panic::catch_unwind(AssertUnwindSafe(|| body(&mut ctx)))
                .map_err(|payload| payload_to_string(payload.as_ref()));
            // Teardown unwinds (scheduler dropped our channel) must not be
            // reported as user panics; they only occur after run() returned.
            let result = match result {
                Err(m) if m == crate::process::TEARDOWN_MSG => Ok(()),
                other => other,
            };
            let _ = core2.yield_tx.send(YieldMsg::Finished { pid, result });
        })
        .expect("failed to spawn simulation process thread");

    core.state.lock().procs.get_mut(&pid).expect("proc vanished").join = Some(join);
    SpawnHandle { pid, done }
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Internal: record what `pid` is blocked on (None clears it). Read only by
/// the deadlock diagnostic; has no effect on scheduling.
pub(crate) fn set_waiting_on(core: &Arc<SchedCore>, pid: ProcessId, what: Option<String>) {
    if let Some(p) = core.state.lock().procs.get_mut(&pid) {
        p.waiting_on = what;
    }
}

/// Internal API used by `Ctx` and `Event`.
pub(crate) fn park_and_bump(core: &Arc<SchedCore>, pid: ProcessId) -> u64 {
    let mut st = core.state.lock();
    let p = st.procs.get_mut(&pid).expect("unknown process parking");
    p.park_epoch += 1;
    p.parked = true;
    p.park_epoch
}

pub(crate) fn now_of(core: &Arc<SchedCore>) -> SimTime {
    core.state.lock().now
}

pub(crate) fn schedule_resume(core: &Arc<SchedCore>, at: SimTime, pid: ProcessId, epoch: u64) -> u64 {
    let mut st = core.state.lock();
    st.push(at, QueueItem::Resume { pid, epoch })
}

/// Cancel a queued item by id before it fires (no-op if it already fired).
/// The heap entry stays behind as a tombstone that the run loop discards
/// without advancing virtual time.
pub(crate) fn cancel_queued(core: &Arc<SchedCore>, id: u64) {
    core.state.lock().items.remove(&id);
}

pub(crate) fn is_shutdown(core: &Arc<SchedCore>) -> bool {
    core.shutdown.load(Ordering::Acquire)
}
