//! # parcomm-sim — deterministic discrete-event simulation kernel
//!
//! The substrate under the whole `parcomm` reproduction. Provides:
//!
//! - a virtual clock ([`SimTime`], [`SimDuration`]) with nanosecond
//!   resolution;
//! - **simulation processes**: blocking-style user code, each process on its
//!   own OS thread, with exactly one runnable at a time (SimGrid-style
//!   cooperative scheduling) — so `MPI_Wait` can be written as an ordinary
//!   blocking call;
//! - **scheduled callbacks** for fine-grained hardware events (DMA
//!   completions, flag writes) that run on the scheduler thread without
//!   thread-switch cost;
//! - wake-up primitives: [`Event`], [`CountEvent`], [`SimChannel`],
//!   [`Semaphore`], [`SimBarrier`];
//! - deterministic seeded randomness ([`SimRng`]) for timing jitter;
//! - deadlock detection and daemon-process shutdown semantics.
//!
//! ## Example
//!
//! ```
//! use parcomm_sim::{Simulation, SimConfig, SimDuration, Event};
//!
//! let mut sim = Simulation::new(SimConfig::default());
//! let done = Event::new();
//! let done2 = done.clone();
//! sim.spawn("producer", move |ctx| {
//!     ctx.advance(SimDuration::from_micros(5));
//!     done2.set(&ctx.handle());
//! });
//! sim.spawn("consumer", move |ctx| {
//!     ctx.wait(&done);
//!     assert_eq!(ctx.now().as_micros_f64(), 5.0);
//! });
//! let report = sim.run().unwrap();
//! assert_eq!(report.end_time.as_micros_f64(), 5.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod event;
mod lock;
mod process;
mod rng;
mod sched;
mod sync;
mod time;
mod trace;

pub use error::{BlockedProcess, SimError};
pub use event::{CountEvent, Event};
pub use lock::Mutex;
pub use process::Ctx;
pub use rng::SimRng;
pub use sched::{ProcessId, SimConfig, SimHandle, SimReport, Simulation, SpawnHandle};
pub use sync::{Semaphore, SimBarrier, SimChannel};
pub use time::{SimDuration, SimTime};
pub use trace::{EvictSink, SpanId, Trace, TraceSpan};
