//! Higher-level synchronization built on [`Event`]: channels, semaphores,
//! and barriers that block in *virtual* time.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::lock::Mutex;

use crate::event::Event;
use crate::process::Ctx;
use crate::sched::SimHandle;

/// An unbounded multi-producer multi-consumer channel delivering instantly
/// (zero virtual latency). Latency, if desired, is modeled by the sender
/// advancing time or by scheduling the send via a callback.
pub struct SimChannel<T> {
    inner: Arc<Mutex<ChannelState<T>>>,
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    /// Fired when the queue becomes non-empty; reset under lock by receivers.
    nonempty: Event,
}

impl<T> Clone for SimChannel<T> {
    fn clone(&self) -> Self {
        SimChannel { inner: self.inner.clone() }
    }
}

impl<T> Default for SimChannel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SimChannel<T> {
    /// Create an empty channel.
    pub fn new() -> Self {
        SimChannel {
            inner: Arc::new(Mutex::new(ChannelState {
                queue: VecDeque::new(),
                nonempty: Event::named("channel"),
            })),
        }
    }

    /// Create an empty channel whose blocked receivers show up in deadlock
    /// diagnostics under `channel '<label>'`.
    pub fn named(label: impl Into<String>) -> Self {
        let ch = SimChannel::new();
        ch.inner.lock().nonempty.set_label(format!("channel '{}'", label.into()));
        ch
    }

    /// Enqueue a value (from a process or a scheduled callback).
    pub fn send(&self, h: &SimHandle, value: T) {
        let ev = {
            let mut st = self.inner.lock();
            st.queue.push_back(value);
            st.nonempty.clone()
        };
        ev.set(h);
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        let mut st = self.inner.lock();
        let v = st.queue.pop_front();
        if st.queue.is_empty() && st.nonempty.is_set() {
            st.nonempty.reset();
        }
        v
    }

    /// Blocking receive in virtual time.
    pub fn recv(&self, ctx: &mut Ctx) -> T {
        loop {
            if let Some(v) = self.try_recv() {
                return v;
            }
            let ev = self.inner.lock().nonempty.clone();
            ctx.wait(&ev);
        }
    }

    /// Number of queued values.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True when no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A counting semaphore in virtual time.
pub struct Semaphore {
    inner: Arc<Mutex<SemState>>,
}

struct SemState {
    permits: u64,
    available: Event,
}

impl Clone for Semaphore {
    fn clone(&self) -> Self {
        Semaphore { inner: self.inner.clone() }
    }
}

impl Semaphore {
    /// Create a semaphore with `permits` initial permits.
    pub fn new(permits: u64) -> Self {
        Semaphore {
            inner: Arc::new(Mutex::new(SemState {
                permits,
                available: Event::named("semaphore"),
            })),
        }
    }

    /// Acquire one permit, blocking in virtual time if none are available.
    pub fn acquire(&self, ctx: &mut Ctx) {
        loop {
            {
                let mut st = self.inner.lock();
                if st.permits > 0 {
                    st.permits -= 1;
                    return;
                }
            }
            let ev = self.inner.lock().available.clone();
            ctx.wait(&ev);
            // Reset so subsequent waits block again; benign if several
            // waiters race, they re-check permits above.
            let st = self.inner.lock();
            if st.permits == 0 && st.available.is_set() {
                st.available.reset();
            }
        }
    }

    /// Release one permit, waking a waiter if any.
    pub fn release(&self, h: &SimHandle) {
        let ev = {
            let mut st = self.inner.lock();
            st.permits += 1;
            st.available.clone()
        };
        ev.set(h);
    }

    /// Currently available permits.
    pub fn permits(&self) -> u64 {
        self.inner.lock().permits
    }
}

/// A reusable N-party barrier in virtual time (used for rank start-up and
/// epoch alignment in benchmarks).
pub struct SimBarrier {
    inner: Arc<Mutex<BarrierState>>,
    parties: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    release: Event,
}

impl Clone for SimBarrier {
    fn clone(&self) -> Self {
        SimBarrier { inner: self.inner.clone(), parties: self.parties }
    }
}

impl SimBarrier {
    /// Create a barrier for `parties` processes.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0);
        SimBarrier {
            inner: Arc::new(Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                release: Event::named("barrier"),
            })),
            parties,
        }
    }

    /// Arrive and wait for all parties. The last arriver releases everyone
    /// and resets the barrier for the next generation.
    pub fn wait(&self, ctx: &mut Ctx) {
        let (release, my_gen, last) = {
            let mut st = self.inner.lock();
            st.arrived += 1;
            let last = st.arrived == self.parties;
            (st.release.clone(), st.generation, last)
        };
        if last {
            let next = {
                let mut st = self.inner.lock();
                st.arrived = 0;
                st.generation += 1;
                let old = st.release.clone();
                st.release = Event::named("barrier");
                old
            };
            next.set(&ctx.handle());
            let _ = my_gen;
            return;
        }
        ctx.wait(&release);
    }

    /// Number of participating processes.
    pub fn parties(&self) -> usize {
        self.parties
    }
}
