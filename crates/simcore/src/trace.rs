//! Structured span tracing over virtual time — the recording backbone of
//! the `parcomm-obs` observability subsystem.
//!
//! Model layers record named spans (`kernel`, `stream_sync`, `wire`, …)
//! against the virtual clock. Spans optionally carry **attribution** (the
//! MPI rank and partition they belong to) and a **causal edge**: the
//! [`SpanId`] of the span that caused them, recorded at each handoff of the
//! GPU-initiated pipeline (device flag-write → progression-engine poll →
//! `ucp_put_nbx` → wire serialization → completion). Analysis code in
//! `parcomm-obs` aggregates the stream into occupancy tables, Chrome
//! `trace_event` timelines, flamegraphs, and critical paths.
//!
//! Recording is **level-gated** so observability never perturbs a run:
//!
//! - level 0 (default): every `record*` call is a no-op;
//! - level 1 ([`Trace::enable`]): the pre-existing base categories record —
//!   exactly the span stream the frozen digest regressions were taken over;
//! - level 2 ([`Trace::enable_causal`]): additionally records the causal
//!   handoff spans ([`Trace::record_causal`]) that only exist for analysis.
//!
//! Span *digests* (see `parcomm-testkit`) hash only `(category, start,
//! end)`, so the attribution fields are digest-neutral at every level, and
//! the level-1 stream is byte-identical whether or not the new fields are
//! populated. Recording never touches the virtual clock or the scheduler,
//! so enabling any level changes neither end times nor event counts.
//!
//! ## Bounding trace memory
//!
//! Two long-run controls exist, both digest-neutral toward the simulation
//! itself (they only decide what is *retained*, never what the model does):
//!
//! - a **bounded ring-buffer sink** ([`Trace::set_capacity`], or the
//!   `PARCOMM_TRACE_CAP` environment variable read at simulation
//!   construction): once full, the oldest spans are evicted;
//!   [`Trace::spans`] remaps surviving causal edges and drops edges into
//!   the evicted prefix. An optional **eviction sink**
//!   ([`Trace::set_evict_sink`]) streams evicted spans out at eviction
//!   time instead of discarding them, so bounded memory no longer means
//!   lost history;
//! - **deterministic 1-in-N causal sampling**
//!   ([`Trace::enable_causal_sampled`]): causal *chains* are sampled at
//!   their head span from a dedicated RNG seeded by the simulation seed
//!   (never the main RNG stream, so arming it perturbs nothing). A
//!   retained head keeps its entire downstream chain — critical-path
//!   edges survive inside every retained chain — while a dropped head
//!   suppresses the causal spans hanging off it. Base (level-1) spans are
//!   never sampled away.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use std::collections::VecDeque;

use crate::lock::Mutex;
use crate::rng::SimRng;

use crate::time::{SimDuration, SimTime};

/// Identity of a recorded span within one [`Trace`], used as the target of
/// causal edges. `SpanId::NONE` means "no cause recorded".
///
/// Ids are allocated densely in recording order: the `i`-th recorded span
/// (0-based) has id `i + 1`, so — until the ring-buffer sink evicts — the
/// id indexes straight into [`Trace::spans`]. After evictions,
/// [`Trace::spans`] re-bases surviving edges onto the returned slice. A
/// cause is always recorded before its effect, hence every causal edge
/// points to a strictly smaller id.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SpanId(u64);

impl SpanId {
    /// The absent span id (no causal edge).
    pub const NONE: SpanId = SpanId(0);

    /// Sentinel returned by [`Trace::record_causal`] for a span dropped by
    /// 1-in-N chain sampling: passing it as the `caused_by` of a later
    /// causal record suppresses that record too, so a dropped chain head
    /// takes its whole chain with it. Behaves like [`SpanId::NONE`] for
    /// `is_none`/`index`, and base-span recording normalizes it away.
    pub const SUPPRESSED: SpanId = SpanId(u64::MAX);

    /// True when this id names no retained span.
    pub fn is_none(self) -> bool {
        self.0 == 0 || self.0 == u64::MAX
    }

    /// Index of the span in the recording order, or `None` for
    /// [`SpanId::NONE`] / [`SpanId::SUPPRESSED`].
    pub fn index(self) -> Option<usize> {
        if self.0 == u64::MAX {
            return None;
        }
        self.0.checked_sub(1).map(|i| i as usize)
    }

    /// Id of the span at `index` in a span stream.
    pub fn from_index(index: usize) -> SpanId {
        SpanId(index as u64 + 1)
    }

    /// Raw id value (0 = none; otherwise index + 1).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// One recorded span.
#[derive(Clone, Debug)]
pub struct TraceSpan {
    /// Category label (static so recording never allocates for the name).
    pub category: &'static str,
    /// Span start (virtual time).
    pub start: SimTime,
    /// Span end (virtual time).
    pub end: SimTime,
    /// MPI rank the span belongs to, when the recording site knows it.
    pub rank: Option<u32>,
    /// Transport/user partition the span serves, when meaningful.
    pub partition: Option<u32>,
    /// The span that caused this one ([`SpanId::NONE`] when unrecorded).
    pub caused_by: SpanId,
}

impl TraceSpan {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

const LEVEL_OFF: u8 = 0;
const LEVEL_SPANS: u8 = 1;
const LEVEL_CAUSAL: u8 = 2;

/// Retained spans plus ring-buffer accounting. Ids handed to recorders are
/// *global* (index into the full recording order); the `evicted` prefix
/// length re-bases them onto the retained window.
#[derive(Default)]
struct SpanStore {
    spans: VecDeque<TraceSpan>,
    /// Spans evicted from the front of the ring so far.
    evicted: u64,
    /// Retained-span cap; 0 = unbounded.
    capacity: usize,
}

/// Deterministic 1-in-N sampler for causal chains.
struct Sampler {
    rng: SimRng,
    one_in: u64,
}

/// Callback invoked with each span the ring buffer evicts, in eviction
/// order. See [`Trace::set_evict_sink`].
pub type EvictSink = Arc<dyn Fn(&TraceSpan) + Send + Sync>;

#[derive(Default)]
pub(crate) struct TraceState {
    level: AtomicU8,
    store: Mutex<SpanStore>,
    sampler: Mutex<Option<Sampler>>,
    evict_sink: Mutex<Option<EvictSink>>,
}

/// Shared handle to a simulation's trace buffer.
#[derive(Clone, Default)]
pub struct Trace {
    pub(crate) state: Arc<TraceState>,
    /// Simulation seed, used (only) to seed the causal-chain sampler.
    seed: u64,
}

impl Trace {
    /// Trace for a simulation seeded with `seed`. Honors the
    /// `PARCOMM_TRACE_CAP` environment variable as the initial ring-buffer
    /// capacity (unset/unparsable = unbounded, matching [`Trace::default`]).
    pub(crate) fn for_sim(seed: u64) -> Trace {
        let trace = Trace { state: Arc::new(TraceState::default()), seed };
        if let Some(cap) = std::env::var("PARCOMM_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            trace.set_capacity(Some(cap));
        }
        trace
    }

    /// Turn base-span recording on (level 1). Never downgrades a trace
    /// already at causal level.
    pub fn enable(&self) {
        self.state.level.fetch_max(LEVEL_SPANS, Ordering::AcqRel);
    }

    /// Turn full causal recording on (level 2): base spans plus the
    /// handoff spans recorded via [`Trace::record_causal`]. Clears any
    /// armed sampler — every chain records.
    pub fn enable_causal(&self) {
        *self.state.sampler.lock() = None;
        self.state.level.fetch_max(LEVEL_CAUSAL, Ordering::AcqRel);
    }

    /// Turn causal recording on with deterministic 1-in-`one_in` chain
    /// sampling: each causal *chain head* (a `record_causal` with no
    /// cause) is kept with probability `1/one_in`, decided by a dedicated
    /// RNG seeded from the simulation seed — the main RNG stream is never
    /// touched, so sampling cannot perturb the run. A kept head retains
    /// its full downstream chain (critical-path edges intact); a dropped
    /// head suppresses the causal spans chained to it. `one_in <= 1` is
    /// full causal recording.
    pub fn enable_causal_sampled(&self, one_in: u64) {
        if one_in <= 1 {
            self.enable_causal();
            return;
        }
        // Domain-separate from the main stream (and from netsim's fault
        // RNG, which uses the raw seed) with a fixed xor constant.
        *self.state.sampler.lock() =
            Some(Sampler { rng: SimRng::seeded(self.seed ^ 0x7AC3_5A3D_11E5_C4A1), one_in });
        self.state.level.fetch_max(LEVEL_CAUSAL, Ordering::AcqRel);
    }

    /// True when spans are being recorded (any level).
    pub fn is_enabled(&self) -> bool {
        self.state.level.load(Ordering::Acquire) > LEVEL_OFF
    }

    /// True when causal handoff spans are being recorded (level 2).
    pub fn causal_enabled(&self) -> bool {
        self.state.level.load(Ordering::Acquire) >= LEVEL_CAUSAL
    }

    /// Bound the retained span window to `cap` spans (`None` = unbounded,
    /// the default). Once full, recording evicts the oldest span; see
    /// [`Trace::spans`] for how causal edges are re-based.
    pub fn set_capacity(&self, cap: Option<usize>) {
        let mut dropped: Vec<TraceSpan> = Vec::new();
        {
            let mut store = self.state.store.lock();
            store.capacity = cap.unwrap_or(0);
            if store.capacity > 0 {
                while store.spans.len() > store.capacity {
                    if let Some(s) = store.spans.pop_front() {
                        dropped.push(s);
                    }
                    store.evicted += 1;
                }
            }
        }
        self.drain_to_sink(&dropped);
    }

    /// Stream spans the ring buffer evicts into `sink`, in eviction order,
    /// instead of discarding them — long chaos campaigns keep a bounded
    /// in-memory window while spilling the full history (e.g. to a JSONL
    /// file via `parcomm-obs`). The sink runs *after* the span store's
    /// lock is released, so it may call back into this trace; it is a pure
    /// retention decision and never perturbs the simulation or its digest.
    /// [`Trace::reset`] discards deliberately and does not sink. `None`
    /// detaches.
    pub fn set_evict_sink(&self, sink: Option<EvictSink>) {
        *self.state.evict_sink.lock() = sink;
    }

    fn drain_to_sink(&self, dropped: &[TraceSpan]) {
        if dropped.is_empty() {
            return;
        }
        let sink = self.state.evict_sink.lock().clone();
        if let Some(sink) = sink {
            for span in dropped {
                sink(span);
            }
        }
    }

    /// The retained-span cap, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        let cap = self.state.store.lock().capacity;
        (cap > 0).then_some(cap)
    }

    /// Spans evicted by the ring buffer so far.
    pub fn evicted(&self) -> u64 {
        self.state.store.lock().evicted
    }

    /// Total spans ever recorded (retained + evicted).
    pub fn recorded(&self) -> u64 {
        let store = self.state.store.lock();
        store.evicted + store.spans.len() as u64
    }

    fn push(
        &self,
        category: &'static str,
        start: SimTime,
        end: SimTime,
        rank: Option<u32>,
        partition: Option<u32>,
        caused_by: SpanId,
    ) -> SpanId {
        // A suppressed cause never escapes into the store.
        let caused_by = if caused_by == SpanId::SUPPRESSED { SpanId::NONE } else { caused_by };
        let mut evicted_span: Option<TraceSpan> = None;
        let mut store = self.state.store.lock();
        let id = SpanId::from_index(store.evicted as usize + store.spans.len());
        store.spans.push_back(TraceSpan { category, start, end, rank, partition, caused_by });
        if store.capacity > 0 && store.spans.len() > store.capacity {
            evicted_span = store.spans.pop_front();
            store.evicted += 1;
        }
        drop(store);
        if let Some(s) = evicted_span {
            self.drain_to_sink(std::slice::from_ref(&s));
        }
        id
    }

    /// Record an unattributed span (no-op unless enabled). Returns the new
    /// span's id, or [`SpanId::NONE`] when recording is off.
    pub fn record(&self, category: &'static str, start: SimTime, end: SimTime) -> SpanId {
        if self.is_enabled() {
            self.push(category, start, end, None, None, SpanId::NONE)
        } else {
            SpanId::NONE
        }
    }

    /// Record an attributed span (no-op unless enabled). Attribution fields
    /// are digest-neutral: span digests hash only `(category, start, end)`.
    pub fn record_attr(
        &self,
        category: &'static str,
        start: SimTime,
        end: SimTime,
        rank: Option<u32>,
        partition: Option<u32>,
        caused_by: SpanId,
    ) -> SpanId {
        if self.is_enabled() {
            self.push(category, start, end, rank, partition, caused_by)
        } else {
            SpanId::NONE
        }
    }

    /// Record a causal handoff span — only at causal level (2), so the
    /// level-1 span stream stays byte-identical to the pre-causal baseline
    /// and frozen digests hold. Returns [`SpanId::NONE`] below level 2,
    /// and [`SpanId::SUPPRESSED`] when 1-in-N sampling dropped the span's
    /// chain (see [`Trace::enable_causal_sampled`]).
    pub fn record_causal(
        &self,
        category: &'static str,
        start: SimTime,
        end: SimTime,
        rank: Option<u32>,
        partition: Option<u32>,
        caused_by: SpanId,
    ) -> SpanId {
        if !self.causal_enabled() {
            return SpanId::NONE;
        }
        // A span extending a suppressed chain is itself suppressed; a
        // chain head rolls the sampling dice.
        if caused_by == SpanId::SUPPRESSED {
            return SpanId::SUPPRESSED;
        }
        if caused_by == SpanId::NONE {
            if let Some(s) = self.state.sampler.lock().as_mut() {
                if s.rng.next_u64() % s.one_in != 0 {
                    return SpanId::SUPPRESSED;
                }
            }
        }
        self.push(category, start, end, rank, partition, caused_by)
    }

    /// All retained spans (clone), with causal edges re-based onto the
    /// returned slice: an edge to an evicted span becomes
    /// [`SpanId::NONE`]; surviving edges satisfy
    /// `spans[e.index()]` being the cause. Without evictions this is the
    /// identity mapping, byte-identical to the pre-ring behavior.
    pub fn spans(&self) -> Vec<TraceSpan> {
        let store = self.state.store.lock();
        let evicted = store.evicted as usize;
        store
            .spans
            .iter()
            .map(|s| {
                let mut s = s.clone();
                s.caused_by = match s.caused_by.index() {
                    Some(i) if i >= evicted => SpanId::from_index(i - evicted),
                    _ => SpanId::NONE,
                };
                s
            })
            .collect()
    }

    /// Number of spans currently retained.
    pub fn span_count(&self) -> usize {
        self.state.store.lock().spans.len()
    }

    /// Clear recorded spans (between measurement phases). Causal edges in
    /// later spans never reference cleared ones: ids restart from 1, and
    /// eviction accounting restarts with them.
    pub fn reset(&self) {
        let mut store = self.state.store.lock();
        store.spans.clear();
        store.evicted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let tr = Trace::default();
        assert_eq!(tr.record("kernel", t(0), t(5)), SpanId::NONE);
        assert_eq!(tr.record_causal("put", t(0), t(0), None, None, SpanId::NONE), SpanId::NONE);
        assert!(tr.spans().is_empty());
    }

    #[test]
    fn level_one_skips_causal_spans() {
        let tr = Trace::default();
        tr.enable();
        let k = tr.record("kernel", t(0), t(5));
        assert_eq!(k, SpanId::from_index(0));
        assert_eq!(tr.record_causal("put", t(5), t(5), None, None, k), SpanId::NONE);
        assert_eq!(tr.span_count(), 1);
        // enable() after enable_causal() must not downgrade.
        tr.enable_causal();
        tr.enable();
        assert!(tr.causal_enabled());
    }

    #[test]
    fn causal_level_links_spans() {
        let tr = Trace::default();
        tr.enable_causal();
        let flag = tr.record_causal("pready_flag", t(1), t(1), Some(0), Some(2), SpanId::NONE);
        let pe = tr.record_causal("pe_post", t(2), t(3), Some(0), Some(2), flag);
        let spans = tr.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].caused_by, flag);
        assert_eq!(pe.index(), Some(1));
        assert!(spans[flag.index().unwrap()].start <= spans[pe.index().unwrap()].start);
        tr.reset();
        assert_eq!(tr.span_count(), 0);
    }

    #[test]
    fn span_ids_are_dense_and_ordered() {
        let tr = Trace::default();
        tr.enable();
        let a = tr.record("a", t(0), t(1));
        let b = tr.record("b", t(1), t(2));
        assert!(a < b);
        assert_eq!(a.as_u64(), 1);
        assert_eq!(b.index(), Some(1));
        assert!(SpanId::NONE.is_none());
        assert_eq!(SpanId::NONE.index(), None);
        assert!(SpanId::SUPPRESSED.is_none());
        assert_eq!(SpanId::SUPPRESSED.index(), None);
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_rebases_edges() {
        let tr = Trace::default();
        tr.enable();
        tr.set_capacity(Some(3));
        let a = tr.record("a", t(0), t(1));
        let b = tr.record_attr("b", t(1), t(2), None, None, a);
        let _c = tr.record_attr("c", t(2), t(3), None, None, b);
        assert_eq!(tr.span_count(), 3);
        assert_eq!(tr.evicted(), 0);
        // Fourth span evicts "a".
        let _d = tr.record_attr("d", t(3), t(4), None, None, b);
        assert_eq!(tr.span_count(), 3);
        assert_eq!(tr.evicted(), 1);
        assert_eq!(tr.recorded(), 4);
        let spans = tr.spans();
        assert_eq!(spans[0].category, "b");
        // b's edge pointed at evicted "a": dropped.
        assert_eq!(spans[0].caused_by, SpanId::NONE);
        // c and d pointed at "b", now slice index 0.
        assert_eq!(spans[1].caused_by, SpanId::from_index(0));
        assert_eq!(spans[2].caused_by, SpanId::from_index(0));
        // Shrinking the cap evicts immediately.
        tr.set_capacity(Some(1));
        assert_eq!(tr.span_count(), 1);
        assert_eq!(tr.spans()[0].category, "d");
        tr.reset();
        assert_eq!(tr.evicted(), 0);
        assert_eq!(tr.recorded(), 0);
    }

    #[test]
    fn evict_sink_receives_exactly_the_evicted_prefix_in_order() {
        let tr = Trace::default();
        tr.enable();
        tr.set_capacity(Some(2));
        let sunk = Arc::new(Mutex::new(Vec::new()));
        let tap = Arc::clone(&sunk);
        tr.set_evict_sink(Some(Arc::new(move |s: &TraceSpan| {
            tap.lock().push(s.category);
        })));
        for name in ["a", "b", "c", "d", "e"] {
            // Leak is fine in tests; categories are &'static str.
            tr.record(Box::leak(name.to_string().into_boxed_str()), t(0), t(1));
        }
        // Retained window is the last 2; everything before streamed out.
        assert_eq!(tr.span_count(), 2);
        assert_eq!(*sunk.lock(), vec!["a", "b", "c"]);
        // Shrinking the cap sinks the extra evictions too.
        tr.set_capacity(Some(1));
        assert_eq!(*sunk.lock(), vec!["a", "b", "c", "d"]);
        // Retained + sunk == recorded: no span is lost.
        assert_eq!(sunk.lock().len() as u64 + tr.span_count() as u64, tr.recorded());
        // reset() discards deliberately: nothing new is sunk.
        tr.reset();
        assert_eq!(sunk.lock().len(), 4);
        // Detaching stops the stream.
        tr.set_capacity(Some(1));
        tr.set_evict_sink(None);
        tr.record("x", t(0), t(1));
        tr.record("y", t(0), t(1));
        assert_eq!(sunk.lock().len(), 4);
    }

    #[test]
    fn sampled_causal_keeps_one_in_n_chains_and_their_edges() {
        let tr = Trace { state: Arc::new(TraceState::default()), seed: 42 };
        tr.enable_causal_sampled(4);
        assert!(tr.causal_enabled());
        let chains: usize = 256;
        let mut kept: usize = 0;
        for i in 0..chains {
            let head = tr.record_causal("head", t(i as u64), t(i as u64), None, None, SpanId::NONE);
            // Downstream spans follow their head's fate exactly.
            let mid = tr.record_causal("mid", t(i as u64), t(i as u64), None, None, head);
            let tail = tr.record_causal("tail", t(i as u64), t(i as u64), None, None, mid);
            if head.is_none() {
                assert_eq!(head, SpanId::SUPPRESSED);
                assert_eq!(mid, SpanId::SUPPRESSED);
                assert_eq!(tail, SpanId::SUPPRESSED);
            } else {
                kept += 1;
                assert!(!mid.is_none() && !tail.is_none());
            }
        }
        // Deterministic, roughly 1-in-4 (loose band: seeded xoshiro).
        assert!((chains / 8..=chains / 2).contains(&kept), "kept {kept}/{chains}");
        let spans = tr.spans();
        assert_eq!(spans.len(), kept * 3);
        // Every retained chain is fully linked: tail -> mid -> head.
        for c in 0..kept {
            assert_eq!(spans[3 * c].category, "head");
            assert_eq!(spans[3 * c + 1].caused_by, SpanId::from_index(3 * c));
            assert_eq!(spans[3 * c + 2].caused_by, SpanId::from_index(3 * c + 1));
        }
        // Identical seed, identical decisions.
        let tr2 = Trace { state: Arc::new(TraceState::default()), seed: 42 };
        tr2.enable_causal_sampled(4);
        for i in 0..chains {
            let head = tr2.record_causal("head", t(i as u64), t(i as u64), None, None, SpanId::NONE);
            tr2.record_causal("mid", t(i as u64), t(i as u64), None, None, head);
            tr2.record_causal("tail", t(i as u64), t(i as u64), None, None, head);
        }
        assert_eq!(tr2.span_count(), kept * 3);
    }

    #[test]
    fn base_spans_never_sampled_and_suppressed_cause_normalizes() {
        let tr = Trace { state: Arc::new(TraceState::default()), seed: 7 };
        tr.enable_causal_sampled(1_000_000); // drop (nearly) every chain
        let mut base = 0;
        for i in 0..32 {
            let head = tr.record_causal("head", t(i), t(i), None, None, SpanId::NONE);
            // A base span fed a suppressed cause still records, with the
            // sentinel normalized away.
            let wire = tr.record_attr("wire", t(i), t(i), None, None, head);
            assert!(!wire.is_none());
            base += 1;
            // …and the chain may resume from the base span.
            let resumed = tr.record_causal("after", t(i), t(i), None, None, wire);
            assert!(!resumed.is_none());
        }
        let spans = tr.spans();
        assert_eq!(spans.len(), base * 2);
        assert!(spans.iter().all(|s| s.caused_by != SpanId::SUPPRESSED));
        // one_in <= 1 falls back to full causal recording.
        let tr_full = Trace { state: Arc::new(TraceState::default()), seed: 7 };
        tr_full.enable_causal_sampled(1);
        assert!(!tr_full
            .record_causal("head", t(0), t(0), None, None, SpanId::NONE)
            .is_none());
    }
}
