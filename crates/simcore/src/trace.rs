//! Structured span tracing over virtual time — the recording backbone of
//! the `parcomm-obs` observability subsystem.
//!
//! Model layers record named spans (`kernel`, `stream_sync`, `wire`, …)
//! against the virtual clock. Spans optionally carry **attribution** (the
//! MPI rank and partition they belong to) and a **causal edge**: the
//! [`SpanId`] of the span that caused them, recorded at each handoff of the
//! GPU-initiated pipeline (device flag-write → progression-engine poll →
//! `ucp_put_nbx` → wire serialization → completion). Analysis code in
//! `parcomm-obs` aggregates the stream into occupancy tables, Chrome
//! `trace_event` timelines, flamegraphs, and critical paths.
//!
//! Recording is **level-gated** so observability never perturbs a run:
//!
//! - level 0 (default): every `record*` call is a no-op;
//! - level 1 ([`Trace::enable`]): the pre-existing base categories record —
//!   exactly the span stream the frozen digest regressions were taken over;
//! - level 2 ([`Trace::enable_causal`]): additionally records the causal
//!   handoff spans ([`Trace::record_causal`]) that only exist for analysis.
//!
//! Span *digests* (see `parcomm-testkit`) hash only `(category, start,
//! end)`, so the attribution fields are digest-neutral at every level, and
//! the level-1 stream is byte-identical whether or not the new fields are
//! populated. Recording never touches the virtual clock or the scheduler,
//! so enabling any level changes neither end times nor event counts.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crate::lock::Mutex;

use crate::time::{SimDuration, SimTime};

/// Identity of a recorded span within one [`Trace`], used as the target of
/// causal edges. `SpanId::NONE` means "no cause recorded".
///
/// Ids are allocated densely in recording order: the `i`-th recorded span
/// (0-based) has id `i + 1`, so `id.index()` indexes straight into
/// [`Trace::spans`]. A cause is always recorded before its effect, hence
/// every causal edge points to a strictly smaller id.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SpanId(u64);

impl SpanId {
    /// The absent span id (no causal edge).
    pub const NONE: SpanId = SpanId(0);

    /// True when this id names no span.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Index of the span in [`Trace::spans`], or `None` for [`SpanId::NONE`].
    pub fn index(self) -> Option<usize> {
        self.0.checked_sub(1).map(|i| i as usize)
    }

    /// Id of the span at `index` in a span stream.
    pub fn from_index(index: usize) -> SpanId {
        SpanId(index as u64 + 1)
    }

    /// Raw id value (0 = none; otherwise index + 1).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// One recorded span.
#[derive(Clone, Debug)]
pub struct TraceSpan {
    /// Category label (static so recording never allocates for the name).
    pub category: &'static str,
    /// Span start (virtual time).
    pub start: SimTime,
    /// Span end (virtual time).
    pub end: SimTime,
    /// MPI rank the span belongs to, when the recording site knows it.
    pub rank: Option<u32>,
    /// Transport/user partition the span serves, when meaningful.
    pub partition: Option<u32>,
    /// The span that caused this one ([`SpanId::NONE`] when unrecorded).
    pub caused_by: SpanId,
}

impl TraceSpan {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

const LEVEL_OFF: u8 = 0;
const LEVEL_SPANS: u8 = 1;
const LEVEL_CAUSAL: u8 = 2;

#[derive(Default)]
pub(crate) struct TraceState {
    level: AtomicU8,
    spans: Mutex<Vec<TraceSpan>>,
}

/// Shared handle to a simulation's trace buffer.
#[derive(Clone, Default)]
pub struct Trace {
    pub(crate) state: Arc<TraceState>,
}

impl Trace {
    /// Turn base-span recording on (level 1). Never downgrades a trace
    /// already at causal level.
    pub fn enable(&self) {
        self.state.level.fetch_max(LEVEL_SPANS, Ordering::AcqRel);
    }

    /// Turn full causal recording on (level 2): base spans plus the
    /// handoff spans recorded via [`Trace::record_causal`].
    pub fn enable_causal(&self) {
        self.state.level.fetch_max(LEVEL_CAUSAL, Ordering::AcqRel);
    }

    /// True when spans are being recorded (any level).
    pub fn is_enabled(&self) -> bool {
        self.state.level.load(Ordering::Acquire) > LEVEL_OFF
    }

    /// True when causal handoff spans are being recorded (level 2).
    pub fn causal_enabled(&self) -> bool {
        self.state.level.load(Ordering::Acquire) >= LEVEL_CAUSAL
    }

    fn push(
        &self,
        category: &'static str,
        start: SimTime,
        end: SimTime,
        rank: Option<u32>,
        partition: Option<u32>,
        caused_by: SpanId,
    ) -> SpanId {
        let mut spans = self.state.spans.lock();
        let id = SpanId::from_index(spans.len());
        spans.push(TraceSpan { category, start, end, rank, partition, caused_by });
        id
    }

    /// Record an unattributed span (no-op unless enabled). Returns the new
    /// span's id, or [`SpanId::NONE`] when recording is off.
    pub fn record(&self, category: &'static str, start: SimTime, end: SimTime) -> SpanId {
        if self.is_enabled() {
            self.push(category, start, end, None, None, SpanId::NONE)
        } else {
            SpanId::NONE
        }
    }

    /// Record an attributed span (no-op unless enabled). Attribution fields
    /// are digest-neutral: span digests hash only `(category, start, end)`.
    pub fn record_attr(
        &self,
        category: &'static str,
        start: SimTime,
        end: SimTime,
        rank: Option<u32>,
        partition: Option<u32>,
        caused_by: SpanId,
    ) -> SpanId {
        if self.is_enabled() {
            self.push(category, start, end, rank, partition, caused_by)
        } else {
            SpanId::NONE
        }
    }

    /// Record a causal handoff span — only at causal level (2), so the
    /// level-1 span stream stays byte-identical to the pre-causal baseline
    /// and frozen digests hold. Returns [`SpanId::NONE`] below level 2.
    pub fn record_causal(
        &self,
        category: &'static str,
        start: SimTime,
        end: SimTime,
        rank: Option<u32>,
        partition: Option<u32>,
        caused_by: SpanId,
    ) -> SpanId {
        if self.causal_enabled() {
            self.push(category, start, end, rank, partition, caused_by)
        } else {
            SpanId::NONE
        }
    }

    /// All spans recorded so far (clone).
    pub fn spans(&self) -> Vec<TraceSpan> {
        self.state.spans.lock().clone()
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.state.spans.lock().len()
    }

    /// Clear recorded spans (between measurement phases). Causal edges in
    /// later spans never reference cleared ones: ids restart from 1.
    pub fn reset(&self) {
        self.state.spans.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let tr = Trace::default();
        assert_eq!(tr.record("kernel", t(0), t(5)), SpanId::NONE);
        assert_eq!(tr.record_causal("put", t(0), t(0), None, None, SpanId::NONE), SpanId::NONE);
        assert!(tr.spans().is_empty());
    }

    #[test]
    fn level_one_skips_causal_spans() {
        let tr = Trace::default();
        tr.enable();
        let k = tr.record("kernel", t(0), t(5));
        assert_eq!(k, SpanId::from_index(0));
        assert_eq!(tr.record_causal("put", t(5), t(5), None, None, k), SpanId::NONE);
        assert_eq!(tr.span_count(), 1);
        // enable() after enable_causal() must not downgrade.
        tr.enable_causal();
        tr.enable();
        assert!(tr.causal_enabled());
    }

    #[test]
    fn causal_level_links_spans() {
        let tr = Trace::default();
        tr.enable_causal();
        let flag = tr.record_causal("pready_flag", t(1), t(1), Some(0), Some(2), SpanId::NONE);
        let pe = tr.record_causal("pe_post", t(2), t(3), Some(0), Some(2), flag);
        let spans = tr.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].caused_by, flag);
        assert_eq!(pe.index(), Some(1));
        assert!(spans[flag.index().unwrap()].start <= spans[pe.index().unwrap()].start);
        tr.reset();
        assert_eq!(tr.span_count(), 0);
    }

    #[test]
    fn span_ids_are_dense_and_ordered() {
        let tr = Trace::default();
        tr.enable();
        let a = tr.record("a", t(0), t(1));
        let b = tr.record("b", t(1), t(2));
        assert!(a < b);
        assert_eq!(a.as_u64(), 1);
        assert_eq!(b.index(), Some(1));
        assert!(SpanId::NONE.is_none());
        assert_eq!(SpanId::NONE.index(), None);
    }
}
