//! Lightweight span tracing over virtual time.
//!
//! Model layers record named spans (`kernel`, `stream_sync`, `wire`, …)
//! against the virtual clock; analysis code aggregates them to explain
//! *where* a measured interval went — e.g. decomposing the partitioned
//! allreduce's gap to NCCL into reduction-kernel launches and stream
//! synchronizations. Tracing is off by default (recording is a no-op) and
//! enabled per simulation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::lock::Mutex;

use crate::time::{SimDuration, SimTime};

/// One recorded span.
#[derive(Clone, Debug)]
pub struct TraceSpan {
    /// Category label (static so recording never allocates for the name).
    pub category: &'static str,
    /// Span start (virtual time).
    pub start: SimTime,
    /// Span end (virtual time).
    pub end: SimTime,
}

impl TraceSpan {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Aggregate of one category.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CategorySummary {
    /// Number of spans recorded.
    pub count: u64,
    /// Total virtual time across spans (spans may overlap in wall terms —
    /// this is occupancy, not elapsed).
    pub total: SimDuration,
}

#[derive(Default)]
pub(crate) struct TraceState {
    enabled: AtomicBool,
    spans: Mutex<Vec<TraceSpan>>,
}

/// Shared handle to a simulation's trace buffer.
#[derive(Clone, Default)]
pub struct Trace {
    pub(crate) state: Arc<TraceState>,
}

impl Trace {
    /// Turn recording on.
    pub fn enable(&self) {
        self.state.enabled.store(true, Ordering::Release);
    }

    /// True when spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.state.enabled.load(Ordering::Acquire)
    }

    /// Record a span (no-op unless enabled).
    pub fn record(&self, category: &'static str, start: SimTime, end: SimTime) {
        if self.is_enabled() {
            self.state.spans.lock().push(TraceSpan { category, start, end });
        }
    }

    /// All spans recorded so far (clone).
    pub fn spans(&self) -> Vec<TraceSpan> {
        self.state.spans.lock().clone()
    }

    /// Aggregate spans within `[from, to]` by category.
    pub fn summarize(&self, from: SimTime, to: SimTime) -> BTreeMap<&'static str, CategorySummary> {
        let mut out: BTreeMap<&'static str, CategorySummary> = BTreeMap::new();
        for s in self.state.spans.lock().iter() {
            if s.end < from || s.start > to {
                continue;
            }
            let start = s.start.max(from);
            let end = s.end.min(to);
            let e = out.entry(s.category).or_default();
            e.count += 1;
            e.total += end.saturating_since(start);
        }
        out
    }

    /// Clear recorded spans (between measurement phases).
    pub fn reset(&self) {
        self.state.spans.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let tr = Trace::default();
        tr.record("kernel", t(0), t(5));
        assert!(tr.spans().is_empty());
    }

    #[test]
    fn summary_clips_to_window() {
        let tr = Trace::default();
        tr.enable();
        tr.record("kernel", t(0), t(10));
        tr.record("kernel", t(20), t(30));
        tr.record("sync", t(5), t(8));
        let s = tr.summarize(t(5), t(25));
        assert_eq!(s["kernel"].count, 2);
        assert_eq!(s["kernel"].total, SimDuration::from_micros(10)); // 5 + 5
        assert_eq!(s["sync"].total, SimDuration::from_micros(3));
        tr.reset();
        assert!(tr.spans().is_empty());
    }
}
