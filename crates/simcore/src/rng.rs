//! Deterministic randomness for the simulation.
//!
//! All stochastic behaviour (timing jitter used to produce the standard
//! deviations reported in Table I, workload initialization, property-test
//! inputs) flows from a single seeded ChaCha8 stream owned by the scheduler,
//! so a `(program, seed)` pair fully determines the simulation trace.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The simulation's random number generator.
pub struct SimRng {
    rng: ChaCha8Rng,
}

impl SimRng {
    /// Construct from a seed.
    pub fn seeded(seed: u64) -> Self {
        SimRng { rng: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "uniform_range: empty range");
        self.rng.gen_range(lo..hi)
    }

    /// Standard normal sample via Box–Muller (no extra dependency).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal()
    }

    /// Fill a slice with uniform values in `[lo, hi)` (workload init).
    pub fn fill_uniform_f64(&mut self, out: &mut [f64], lo: f64, hi: f64) {
        for v in out {
            *v = lo + (hi - lo) * self.rng.gen::<f64>();
        }
    }

    /// Fill a slice with uniform `f32` values in `[lo, hi)`.
    pub fn fill_uniform_f32(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out {
            *v = lo + (hi - lo) * self.rng.gen::<f32>();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(7);
        let mut b = SimRng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::seeded(7);
        let mut b = SimRng::seeded(8);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seeded(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::seeded(1);
        for _ in 0..1000 {
            let v = rng.uniform_range(5, 9);
            assert!((5..9).contains(&v));
        }
    }
}
