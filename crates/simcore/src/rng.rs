//! Deterministic randomness for the simulation.
//!
//! All stochastic behaviour (timing jitter used to produce the standard
//! deviations reported in Table I, workload initialization, property-test
//! inputs) flows from a single seeded generator owned by the scheduler, so a
//! `(program, seed)` pair fully determines the simulation trace.
//!
//! The generator is an in-tree **xoshiro256\*\*** (Blackman & Vigna) whose
//! 256-bit state is expanded from the `u64` seed with **SplitMix64**, the
//! seeding procedure the xoshiro authors recommend. No external crates are
//! involved (hermetic-build policy), and the output stream for a given seed
//! is frozen: determinism tests hash it, so changing the algorithm is a
//! breaking change to every recorded trace digest.

/// SplitMix64 step: advances `state` and returns the next output. Used only
/// to expand a 64-bit seed into the 256-bit xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The simulation's random number generator (xoshiro256\*\*, SplitMix64
/// seeded).
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Construct from a seed. Distinct seeds yield uncorrelated streams;
    /// equal seeds yield bit-identical streams.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        // SplitMix64 never emits four consecutive zeros for any input, so
        // the forbidden all-zero xoshiro state is unreachable.
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output (the primitive every other sampler builds on).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, 1)` with 24 bits of precision (`f32`).
    pub fn uniform_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform integer in `[lo, hi)`, unbiased (rejection sampling).
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "uniform_range: empty range");
        let span = hi - lo;
        // Reject draws from the tail that would bias the modulus.
        let limit = u64::MAX - (u64::MAX % span + 1) % span;
        loop {
            let x = self.next_u64();
            if x <= limit {
                return lo + x % span;
            }
        }
    }

    /// Standard normal sample via Box–Muller (no extra dependency).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1: f64 = 1.0 - self.uniform();
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal()
    }

    /// Fill a slice with uniform values in `[lo, hi)` (workload init).
    pub fn fill_uniform_f64(&mut self, out: &mut [f64], lo: f64, hi: f64) {
        for v in out {
            *v = lo + (hi - lo) * self.uniform();
        }
    }

    /// Fill a slice with uniform `f32` values in `[lo, hi)`.
    pub fn fill_uniform_f32(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out {
            *v = lo + (hi - lo) * self.uniform_f32();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(7);
        let mut b = SimRng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::seeded(7);
        let mut b = SimRng::seeded(8);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn matches_reference_xoshiro_vectors() {
        // Known-answer test against the canonical SplitMix64 / xoshiro256**
        // C reference, seed 0: freezes the in-tree implementation (every
        // recorded trace digest depends on this stream).
        let expect_state = [
            0xE220_A839_7B1D_CDAF_u64,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
        ];
        let mut rng = SimRng::seeded(0);
        assert_eq!(rng.s, expect_state);
        assert_eq!(rng.next_u64(), 0x99EC_5F36_CB75_F2B4);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SimRng::seeded(3);
        for _ in 0..10_000 {
            let v = rng.uniform();
            assert!((0.0..1.0).contains(&v), "{v}");
            let w = rng.uniform_f32();
            assert!((0.0..1.0).contains(&w), "{w}");
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seeded(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::seeded(1);
        for _ in 0..1000 {
            let v = rng.uniform_range(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn uniform_range_hits_every_value() {
        let mut rng = SimRng::seeded(9);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.uniform_range(0, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
