//! Simulation error types.

use std::fmt;

/// One blocked process in a [`SimError::Deadlock`] report: who is stuck and
/// what primitive it was waiting on when the scheduler ran out of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedProcess {
    /// The process's name (as given at spawn).
    pub process: String,
    /// Human-readable description of the wait target, e.g.
    /// `event 'start_barrier'` or `count 'arrived' (3/8)`. `None` when the
    /// process parked through a primitive that carries no label.
    pub waiting_on: Option<String>,
}

impl fmt::Display for BlockedProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.waiting_on {
            Some(w) => write!(f, "{} (waiting on {})", self.process, w),
            None => write!(f, "{}", self.process),
        }
    }
}

/// Fatal outcomes of running a simulation.
#[derive(Debug)]
pub enum SimError {
    /// Regular processes remain blocked but no timed work is pending. Each
    /// entry names the blocked process and, where known, the event /
    /// semaphore / channel it is waiting on — enough to diagnose a chaos-test
    /// hang from the error alone.
    Deadlock {
        /// Blocked processes at the moment of detection, with wait targets.
        blocked: Vec<BlockedProcess>,
    },
    /// A process body panicked; the message is the panic payload.
    ProcessPanic {
        /// The panicking process's name.
        name: String,
        /// The stringified panic payload.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                let list: Vec<String> = blocked.iter().map(|b| b.to_string()).collect();
                write!(f, "simulation deadlock; blocked processes: [{}]", list.join(", "))
            }
            SimError::ProcessPanic { name, message } => {
                write!(f, "process '{name}' panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}
