//! Simulation error types.

use std::fmt;

/// Fatal outcomes of running a simulation.
#[derive(Debug)]
pub enum SimError {
    /// Regular processes remain blocked but no timed work is pending.
    Deadlock {
        /// Names of blocked processes at the moment of detection.
        blocked: Vec<String>,
    },
    /// A process body panicked; the message is the panic payload.
    ProcessPanic {
        /// The panicking process's name.
        name: String,
        /// The stringified panic payload.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(f, "simulation deadlock; blocked processes: {blocked:?}")
            }
            SimError::ProcessPanic { name, message } => {
                write!(f, "process '{name}' panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}
