//! Virtual time primitives.
//!
//! All simulation time is measured in integer nanoseconds. Using an integer
//! base unit keeps event ordering exact (no float comparison pitfalls) while
//! nanosecond resolution is fine enough for every latency in the calibrated
//! cost model (the smallest is in the tens of nanoseconds).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual timeline, in nanoseconds since simulation start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional microseconds (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional seconds (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; virtual time never runs
    /// backwards, so that indicates a bug in the caller.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is in the future"),
        )
    }

    /// Saturating difference; zero if `earlier` is later than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional microseconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero (useful when a jittered
    /// sample dips below zero).
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us * 1_000.0).max(0.0).round() as u64)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e9).max(0.0).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the span is zero nanoseconds.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scale by an integer factor.
    #[inline]
    pub const fn saturating_mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

/// Render nanoseconds with an adaptive unit, e.g. `7.800us`, `1.234ms`.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_500);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).since(t).as_micros_f64(), 2.0);
    }

    #[test]
    fn fractional_construction_rounds() {
        assert_eq!(SimDuration::from_micros_f64(7.8).as_nanos(), 7_800);
        assert_eq!(SimDuration::from_micros_f64(0.0004).as_nanos(), 0);
        assert_eq!(SimDuration::from_micros_f64(-3.0).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
    }

    #[test]
    #[should_panic(expected = "earlier is in the future")]
    fn since_panics_on_backwards_time() {
        let _ = SimTime::from_nanos(5).since(SimTime::from_nanos(6));
    }

    #[test]
    fn saturating_ops() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a).as_nanos(), 4);
        assert_eq!(
            SimTime::from_nanos(5).saturating_since(SimTime::from_nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_adapts_units() {
        assert_eq!(SimDuration::from_nanos(500).to_string(), "500ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_and_scale() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
        assert_eq!(SimDuration::from_micros(3) * 4, SimDuration::from_micros(12));
        assert_eq!(SimDuration::from_micros(12) / 4, SimDuration::from_micros(3));
    }
}
