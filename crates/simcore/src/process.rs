//! The process-side API: what simulation code can do.
//!
//! Every simulation process receives a `&mut Ctx`. All blocking operations
//! (`advance`, `wait`, channel receives) go through it; the mutable borrow
//! statically prevents a process from blocking re-entrantly.

use std::sync::Arc;

use std::sync::mpsc::Receiver;

use crate::event::Event;
use crate::rng::SimRng;
use crate::sched::{self, ProcessId, SchedCore, SimHandle, SpawnHandle, YieldMsg};
use crate::time::{SimDuration, SimTime};

/// Sentinel panic message used to unwind process threads when the simulation
/// is torn down before they run again (only possible after `run` returned).
pub(crate) const TEARDOWN_MSG: &str = "__parcomm_sim_teardown__";

/// Per-process execution context.
///
/// Not `Clone` and not `Send`-shareable: it owns the process's resume channel.
/// To give long-lived model objects access to the simulation, use
/// [`Ctx::handle`].
pub struct Ctx {
    pid: ProcessId,
    core: Arc<SchedCore>,
    resume_rx: Receiver<()>,
    handle: SimHandle,
}

impl Ctx {
    pub(crate) fn new(pid: ProcessId, core: Arc<SchedCore>, resume_rx: Receiver<()>) -> Self {
        let handle = SimHandle { core: core.clone() };
        Ctx { pid, core, resume_rx, handle }
    }

    /// This process's id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        sched::now_of(&self.core)
    }

    /// A cloneable, non-blocking capability handle (for model objects and
    /// scheduled callbacks).
    pub fn handle(&self) -> SimHandle {
        self.handle.clone()
    }

    /// True once the simulation is winding down daemons (all regular
    /// processes finished). Daemon poll loops should check this.
    pub fn is_shutdown(&self) -> bool {
        sched::is_shutdown(&self.core)
    }

    /// Let virtual time pass: park this process and resume it `dt` later.
    ///
    /// `advance(SimDuration::ZERO)` yields to other same-instant work
    /// (FIFO order among equal timestamps).
    pub fn advance(&mut self, dt: SimDuration) {
        let epoch = sched::park_and_bump(&self.core, self.pid);
        let at = self.now() + dt;
        self.core
            .yield_tx
            .send(YieldMsg::AdvanceTo { pid: self.pid, at, epoch })
            .expect("scheduler gone");
        self.park();
    }

    /// Yield to other processes/callbacks scheduled at the current instant.
    pub fn yield_now(&mut self) {
        self.advance(SimDuration::ZERO);
    }

    /// Block until `event` fires. Returns `true` if the event is set, or
    /// `false` if the process was released by simulation shutdown instead
    /// (only happens to daemons).
    pub fn wait(&mut self, event: &Event) -> bool {
        loop {
            if event.is_set() {
                self.clear_wait_note();
                return true;
            }
            if self.is_shutdown() {
                self.clear_wait_note();
                return false;
            }
            self.note_wait(describe_event(event));
            let epoch = sched::park_and_bump(&self.core, self.pid);
            // Register *after* bumping so the event wakes the right epoch.
            if !event.register_waiter(self.pid, epoch) {
                // Event fired between the check and registration: un-park by
                // scheduling an immediate resume for our epoch.
                sched::schedule_resume(&self.core, self.now(), self.pid, epoch);
            }
            self.core
                .yield_tx
                .send(YieldMsg::Blocked { pid: self.pid })
                .expect("scheduler gone");
            self.park();
        }
    }

    /// Block until `event` fires or `dt` elapses. Returns `true` if the event
    /// is set (even if it fired exactly at the deadline).
    pub fn wait_timeout(&mut self, event: &Event, dt: SimDuration) -> bool {
        let deadline = self.now() + dt;
        loop {
            if event.is_set() {
                self.clear_wait_note();
                return true;
            }
            if self.is_shutdown() || self.now() >= deadline {
                self.clear_wait_note();
                return event.is_set();
            }
            self.note_wait(describe_event(event));
            let epoch = sched::park_and_bump(&self.core, self.pid);
            if !event.register_waiter(self.pid, epoch) {
                sched::schedule_resume(&self.core, self.now(), self.pid, epoch);
            }
            // Timed backstop at the deadline; cancelled below if the event
            // wins, so it can never stretch the simulation's end time.
            let backstop = sched::schedule_resume(&self.core, deadline, self.pid, epoch);
            self.core
                .yield_tx
                .send(YieldMsg::Blocked { pid: self.pid })
                .expect("scheduler gone");
            self.park();
            sched::cancel_queued(&self.core, backstop);
        }
    }

    /// Block until all events in `events` have fired.
    pub fn wait_all(&mut self, events: &[Event]) {
        for e in events {
            self.wait(e);
        }
    }

    /// Block until `counter` reaches at least `threshold` (or shutdown).
    pub fn wait_count(&mut self, counter: &crate::event::CountEvent, threshold: u64) {
        loop {
            if counter.count() >= threshold || self.is_shutdown() {
                self.clear_wait_note();
                return;
            }
            self.note_wait(describe_count(counter, threshold));
            let epoch = sched::park_and_bump(&self.core, self.pid);
            if !counter.register_waiter(threshold, self.pid, epoch) {
                sched::schedule_resume(&self.core, self.now(), self.pid, epoch);
            }
            self.core
                .yield_tx
                .send(YieldMsg::Blocked { pid: self.pid })
                .expect("scheduler gone");
            self.park();
        }
    }

    /// Block until `counter` reaches at least `threshold`, `dt` elapses, or
    /// shutdown. Returns `true` if the threshold was met (even exactly at the
    /// deadline). The timed backstop is only scheduled when this method is
    /// called, so code paths that never arm a timeout cost no extra events.
    pub fn wait_count_timeout(
        &mut self,
        counter: &crate::event::CountEvent,
        threshold: u64,
        dt: SimDuration,
    ) -> bool {
        let deadline = self.now() + dt;
        loop {
            if counter.count() >= threshold {
                self.clear_wait_note();
                return true;
            }
            if self.is_shutdown() || self.now() >= deadline {
                self.clear_wait_note();
                return counter.count() >= threshold;
            }
            self.note_wait(describe_count(counter, threshold));
            let epoch = sched::park_and_bump(&self.core, self.pid);
            if !counter.register_waiter(threshold, self.pid, epoch) {
                sched::schedule_resume(&self.core, self.now(), self.pid, epoch);
            }
            // Timed backstop at the deadline; cancelled below if the counter
            // wins, so it can never stretch the simulation's end time.
            let backstop = sched::schedule_resume(&self.core, deadline, self.pid, epoch);
            self.core
                .yield_tx
                .send(YieldMsg::Blocked { pid: self.pid })
                .expect("scheduler gone");
            self.park();
            sched::cancel_queued(&self.core, backstop);
        }
    }

    /// Spawn a regular child process starting at the current virtual time.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        body: impl FnOnce(&mut Ctx) + Send + 'static,
    ) -> SpawnHandle {
        sched::spawn_process(&self.core, name.into(), false, body)
    }

    /// Spawn a daemon child process (released at shutdown; see crate docs).
    pub fn spawn_daemon(
        &mut self,
        name: impl Into<String>,
        body: impl FnOnce(&mut Ctx) + Send + 'static,
    ) -> SpawnHandle {
        sched::spawn_process(&self.core, name.into(), true, body)
    }

    /// Block until the given spawned process finishes.
    pub fn join(&mut self, handle: &SpawnHandle) {
        self.wait(&handle.done);
    }

    /// Draw from the simulation's deterministic RNG.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut SimRng) -> T) -> T {
        self.handle.with_rng(f)
    }

    /// Sample a normally distributed duration (clamped at zero), in
    /// microseconds.
    pub fn jitter_us(&self, mean: f64, sd: f64) -> SimDuration {
        self.handle.jitter_us(mean, sd)
    }

    /// Park the calling thread until the scheduler resumes us.
    fn park(&mut self) {
        if self.resume_rx.recv().is_err() {
            // Simulation dropped while we were parked (only after run()
            // returned, e.g. a leaked daemon). Unwind quietly.
            std::panic::panic_any(TEARDOWN_MSG.to_string());
        }
    }

    /// Record what this process is about to block on (deadlock diagnosis).
    fn note_wait(&self, what: String) {
        sched::set_waiting_on(&self.core, self.pid, Some(what));
    }

    /// Clear the wait-for note once unblocked.
    fn clear_wait_note(&self) {
        sched::set_waiting_on(&self.core, self.pid, None);
    }
}

/// Wait-for description of an [`Event`] for deadlock diagnostics.
fn describe_event(event: &Event) -> String {
    match event.label() {
        Some(l) => format!("event '{l}'"),
        None => "event <unnamed>".to_string(),
    }
}

/// Wait-for description of a [`crate::event::CountEvent`], including how far
/// along the counter was when the process last parked.
fn describe_count(counter: &crate::event::CountEvent, threshold: u64) -> String {
    let cur = counter.count();
    match counter.label() {
        Some(l) => format!("count '{l}' ({cur}/{threshold})"),
        None => format!("count <unnamed> ({cur}/{threshold})"),
    }
}
