//! Tests for the virtual-time synchronization primitives: semaphores,
//! channels under contention, event reuse, and scheduling edge cases.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_sim::{Event, Semaphore, SimChannel, SimConfig, SimDuration, SimTime, Simulation};

fn us(n: u64) -> SimDuration {
    SimDuration::from_micros(n)
}

#[test]
fn semaphore_limits_concurrency() {
    let mut sim = Simulation::new(SimConfig::default());
    let sem = Semaphore::new(2);
    let active = Arc::new(AtomicU64::new(0));
    let peak = Arc::new(AtomicU64::new(0));
    for i in 0..6 {
        let sem = sem.clone();
        let active = active.clone();
        let peak = peak.clone();
        sim.spawn(format!("w{i}"), move |ctx| {
            sem.acquire(ctx);
            let now = active.fetch_add(1, Ordering::Relaxed) + 1;
            peak.fetch_max(now, Ordering::Relaxed);
            ctx.advance(us(10));
            active.fetch_sub(1, Ordering::Relaxed);
            sem.release(&ctx.handle());
        });
    }
    sim.run().unwrap();
    assert_eq!(peak.load(Ordering::Relaxed), 2, "at most 2 holders");
    assert_eq!(sem.permits(), 2, "all permits returned");
}

#[test]
fn semaphore_fifo_progress() {
    // All waiters eventually acquire; total virtual time reflects the
    // 3 waves of 2 × 10 µs.
    let mut sim = Simulation::new(SimConfig::default());
    let sem = Semaphore::new(2);
    for i in 0..6 {
        let sem = sem.clone();
        sim.spawn(format!("w{i}"), move |ctx| {
            sem.acquire(ctx);
            ctx.advance(us(10));
            sem.release(&ctx.handle());
        });
    }
    let report = sim.run().unwrap();
    assert_eq!(report.end_time, SimTime::from_nanos(30_000));
}

#[test]
fn channel_multiple_consumers_each_get_one() {
    let mut sim = Simulation::new(SimConfig::default());
    let ch: SimChannel<u64> = SimChannel::new();
    let seen = Arc::new(Mutex::new(Vec::new()));
    for i in 0..3 {
        let ch = ch.clone();
        let seen = seen.clone();
        sim.spawn(format!("rx{i}"), move |ctx| {
            let v = ch.recv(ctx);
            seen.lock().push(v);
        });
    }
    let ch2 = ch.clone();
    sim.spawn("tx", move |ctx| {
        for v in [10u64, 20, 30] {
            ctx.advance(us(1));
            ch2.send(&ctx.handle(), v);
        }
    });
    sim.run().unwrap();
    let mut got = seen.lock().clone();
    got.sort_unstable();
    assert_eq!(got, vec![10, 20, 30], "each consumer gets exactly one value");
}

#[test]
fn event_reset_allows_reuse() {
    let mut sim = Simulation::new(SimConfig::default());
    let ev = Event::new();
    let ev2 = ev.clone();
    sim.spawn("p", move |ctx| {
        ev2.set(&ctx.handle());
        assert!(ev2.is_set());
        ev2.reset();
        assert!(!ev2.is_set());
        assert_eq!(ev2.set_at(), None);
        ctx.advance(us(3));
        ev2.set(&ctx.handle());
        assert_eq!(ev2.set_at(), Some(SimTime::from_nanos(3_000)));
    });
    sim.run().unwrap();
}

#[test]
fn callbacks_scheduled_from_callbacks_preserve_order() {
    let mut sim = Simulation::new(SimConfig::default());
    let log = Arc::new(Mutex::new(Vec::new()));
    let log2 = log.clone();
    sim.spawn("p", move |ctx| {
        let h = ctx.handle();
        let log3 = log2.clone();
        h.schedule_in(us(5), move |h| {
            log3.lock().push(("outer", h.now().as_micros_f64()));
            let log4 = log3.clone();
            h.schedule_in(us(0), move |h| {
                log4.lock().push(("inner-now", h.now().as_micros_f64()));
            });
            let log5 = log3.clone();
            h.schedule_in(us(2), move |h| {
                log5.lock().push(("inner-later", h.now().as_micros_f64()));
            });
        });
        ctx.advance(us(20));
    });
    sim.run().unwrap();
    assert_eq!(
        *log.lock(),
        vec![("outer", 5.0), ("inner-now", 5.0), ("inner-later", 7.0)]
    );
}

#[test]
#[should_panic(expected = "in the past")]
fn schedule_at_rejects_past_instants() {
    let mut sim = Simulation::new(SimConfig::default());
    sim.spawn("p", |ctx| {
        ctx.advance(us(10));
        let h = ctx.handle();
        h.schedule_at(SimTime::from_nanos(1), |_| {});
    });
    let err = sim.run().unwrap_err();
    panic!("{err}");
}

#[test]
fn count_event_bulk_add_wakes_multiple_thresholds() {
    let mut sim = Simulation::new(SimConfig::default());
    let counter = parcomm_sim::CountEvent::new();
    let woken = Arc::new(Mutex::new(Vec::new()));
    for threshold in [2u64, 5, 9] {
        let c = counter.clone();
        let woken = woken.clone();
        sim.spawn(format!("t{threshold}"), move |ctx| {
            ctx.wait_count(&c, threshold);
            woken.lock().push((threshold, ctx.now().as_micros_f64()));
        });
    }
    let c2 = counter.clone();
    sim.spawn("adder", move |ctx| {
        ctx.advance(us(1));
        c2.add(&ctx.handle(), 6); // wakes thresholds 2 and 5 at once
        ctx.advance(us(1));
        c2.add(&ctx.handle(), 3); // wakes threshold 9
    });
    sim.run().unwrap();
    let w = woken.lock();
    assert_eq!(w.len(), 3);
    assert!(w.iter().any(|&(t, at)| t == 2 && at == 1.0));
    assert!(w.iter().any(|&(t, at)| t == 5 && at == 1.0));
    assert!(w.iter().any(|&(t, at)| t == 9 && at == 2.0));
}

#[test]
fn nested_spawn_hierarchy_completes() {
    let mut sim = Simulation::new(SimConfig::default());
    let total = Arc::new(AtomicU64::new(0));
    let t2 = total.clone();
    sim.spawn("root", move |ctx| {
        let t3 = t2.clone();
        let child = ctx.spawn("child", move |ctx| {
            let t4 = t3.clone();
            let grandchild = ctx.spawn("grandchild", move |ctx| {
                ctx.advance(us(1));
                t4.fetch_add(1, Ordering::Relaxed);
            });
            ctx.join(&grandchild);
            t3.fetch_add(1, Ordering::Relaxed);
        });
        ctx.join(&child);
        t2.fetch_add(1, Ordering::Relaxed);
    });
    sim.run().unwrap();
    assert_eq!(total.load(Ordering::Relaxed), 3);
}
