//! Integration tests for the discrete-event scheduler: ordering, blocking,
//! shutdown, deadlock detection, and determinism.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_sim::{
    CountEvent, Event, SimBarrier, SimChannel, SimConfig, SimDuration, SimError, SimTime,
    Simulation,
};

fn us(n: u64) -> SimDuration {
    SimDuration::from_micros(n)
}

#[test]
fn empty_simulation_completes() {
    let sim = Simulation::new(SimConfig::default());
    let report = sim.run().unwrap();
    assert_eq!(report.end_time, SimTime::ZERO);
    assert_eq!(report.processes, 0);
}

#[test]
fn single_process_advances_clock() {
    let mut sim = Simulation::with_seed(1);
    let end = Arc::new(Mutex::new(SimTime::ZERO));
    let end2 = end.clone();
    sim.spawn("p", move |ctx| {
        assert_eq!(ctx.now(), SimTime::ZERO);
        ctx.advance(us(10));
        ctx.advance(us(5));
        *end2.lock() = ctx.now();
    });
    let report = sim.run().unwrap();
    assert_eq!(*end.lock(), SimTime::from_nanos(15_000));
    assert_eq!(report.end_time, SimTime::from_nanos(15_000));
}

#[test]
fn processes_interleave_in_time_order() {
    let mut sim = Simulation::with_seed(1);
    let log = Arc::new(Mutex::new(Vec::new()));
    for (name, delay) in [("a", 30u64), ("b", 10), ("c", 20)] {
        let log = log.clone();
        sim.spawn(name, move |ctx| {
            ctx.advance(us(delay));
            log.lock().push((name, ctx.now().as_micros_f64()));
        });
    }
    sim.run().unwrap();
    let log = log.lock();
    assert_eq!(
        *log,
        vec![("b", 10.0), ("c", 20.0), ("a", 30.0)],
        "wakeups must be in virtual-time order"
    );
}

#[test]
fn same_instant_is_fifo() {
    let mut sim = Simulation::with_seed(1);
    let log = Arc::new(Mutex::new(Vec::new()));
    for name in ["first", "second", "third"] {
        let log = log.clone();
        sim.spawn(name, move |ctx| {
            ctx.advance(us(5));
            log.lock().push(name);
        });
    }
    sim.run().unwrap();
    assert_eq!(*log.lock(), vec!["first", "second", "third"]);
}

#[test]
fn event_wait_and_set() {
    let mut sim = Simulation::with_seed(1);
    let ev = Event::new();
    let ev2 = ev.clone();
    let waited_until = Arc::new(Mutex::new(0.0));
    let w2 = waited_until.clone();
    sim.spawn("waiter", move |ctx| {
        assert!(ctx.wait(&ev2));
        *w2.lock() = ctx.now().as_micros_f64();
    });
    let ev3 = ev.clone();
    sim.spawn("setter", move |ctx| {
        ctx.advance(us(42));
        ev3.set(&ctx.handle());
    });
    sim.run().unwrap();
    assert_eq!(*waited_until.lock(), 42.0);
    assert_eq!(ev.set_at(), Some(SimTime::from_nanos(42_000)));
}

#[test]
fn wait_on_already_set_event_returns_immediately() {
    let mut sim = Simulation::with_seed(1);
    let ev = Event::new();
    let ev2 = ev.clone();
    sim.spawn("p", move |ctx| {
        ev2.set(&ctx.handle());
        let t0 = ctx.now();
        assert!(ctx.wait(&ev2));
        assert_eq!(ctx.now(), t0);
    });
    sim.run().unwrap();
}

#[test]
fn event_set_is_idempotent() {
    let mut sim = Simulation::with_seed(1);
    let ev = Event::new();
    let ev2 = ev.clone();
    sim.spawn("p", move |ctx| {
        ev2.set(&ctx.handle());
        ctx.advance(us(5));
        ev2.set(&ctx.handle()); // second set must not move set_at
        assert_eq!(ev2.set_at(), Some(SimTime::ZERO));
    });
    sim.run().unwrap();
}

#[test]
fn wait_timeout_expires() {
    let mut sim = Simulation::with_seed(1);
    let ev = Event::new();
    let ev2 = ev.clone();
    sim.spawn("p", move |ctx| {
        let fired = ctx.wait_timeout(&ev2, us(10));
        assert!(!fired, "event never set; timeout must report false");
        assert_eq!(ctx.now().as_micros_f64(), 10.0);
    });
    sim.run().unwrap();
}

#[test]
fn wait_timeout_event_wins() {
    let mut sim = Simulation::with_seed(1);
    let ev = Event::new();
    let ev2 = ev.clone();
    sim.spawn("waiter", move |ctx| {
        let fired = ctx.wait_timeout(&ev2, us(100));
        assert!(fired);
        assert_eq!(ctx.now().as_micros_f64(), 7.0);
        // The stale timeout wake at t=100 must not disturb later sleeps.
        ctx.advance(us(1));
        assert_eq!(ctx.now().as_micros_f64(), 8.0);
    });
    let ev3 = ev.clone();
    sim.spawn("setter", move |ctx| {
        ctx.advance(us(7));
        ev3.set(&ctx.handle());
    });
    sim.run().unwrap();
}

#[test]
fn scheduled_callbacks_run_at_their_time() {
    let mut sim = Simulation::with_seed(1);
    let hits = Arc::new(Mutex::new(Vec::new()));
    let hits2 = hits.clone();
    sim.spawn("p", move |ctx| {
        let h = ctx.handle();
        for (i, d) in [30u64, 10, 20].into_iter().enumerate() {
            let hits3 = hits2.clone();
            h.schedule_in(us(d), move |h| {
                hits3.lock().push((i, h.now().as_micros_f64()));
            });
        }
        ctx.advance(us(100));
    });
    sim.run().unwrap();
    assert_eq!(*hits.lock(), vec![(1, 10.0), (2, 20.0), (0, 30.0)]);
}

#[test]
fn callbacks_can_chain_and_set_events() {
    let mut sim = Simulation::with_seed(1);
    let ev = Event::new();
    let ev2 = ev.clone();
    sim.spawn("p", move |ctx| {
        let h = ctx.handle();
        let ev3 = ev2.clone();
        h.schedule_in(us(5), move |h| {
            let ev4 = ev3.clone();
            h.schedule_in(us(5), move |h| ev4.set(h));
        });
        assert!(ctx.wait(&ev2));
        assert_eq!(ctx.now().as_micros_f64(), 10.0);
    });
    sim.run().unwrap();
}

#[test]
fn dynamic_spawn_and_join() {
    let mut sim = Simulation::with_seed(1);
    let total = Arc::new(AtomicU64::new(0));
    let total2 = total.clone();
    sim.spawn("parent", move |ctx| {
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let total3 = total2.clone();
            handles.push(ctx.spawn(format!("child{i}"), move |ctx| {
                ctx.advance(us(i + 1));
                total3.fetch_add(i + 1, Ordering::Relaxed);
            }));
        }
        for h in &handles {
            ctx.join(h);
        }
        assert_eq!(total2.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
        assert_eq!(ctx.now().as_micros_f64(), 4.0);
    });
    sim.run().unwrap();
    assert_eq!(total.load(Ordering::Relaxed), 10);
}

#[test]
fn deadlock_is_detected_with_names() {
    let mut sim = Simulation::with_seed(1);
    let ev = Event::named("never-fires");
    sim.spawn("stuck-proc", move |ctx| {
        ctx.wait(&ev); // never set
    });
    match sim.run() {
        Err(SimError::Deadlock { blocked }) => {
            assert_eq!(blocked.len(), 1);
            assert_eq!(blocked[0].process, "stuck-proc");
            // Wait-for diagnosis: the error alone says what it was stuck on.
            assert_eq!(blocked[0].waiting_on.as_deref(), Some("event 'never-fires'"));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn deadlock_reports_unnamed_and_count_waits() {
    let mut sim = Simulation::with_seed(1);
    let ev = Event::new();
    let counter = parcomm_sim::CountEvent::named("arrivals");
    sim.spawn("event-waiter", move |ctx| {
        ctx.wait(&ev);
    });
    sim.spawn("count-waiter", move |ctx| {
        ctx.wait_count(&counter, 8);
    });
    match sim.run() {
        Err(SimError::Deadlock { blocked }) => {
            // Sorted by process name for deterministic diagnostics.
            assert_eq!(blocked.len(), 2);
            assert_eq!(blocked[0].process, "count-waiter");
            assert_eq!(blocked[0].waiting_on.as_deref(), Some("count 'arrivals' (0/8)"));
            assert_eq!(blocked[1].process, "event-waiter");
            assert_eq!(blocked[1].waiting_on.as_deref(), Some("event <unnamed>"));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn wait_count_timeout_meets_threshold_or_expires() {
    let mut sim = Simulation::with_seed(1);
    let fast = parcomm_sim::CountEvent::new();
    let slow = parcomm_sim::CountEvent::new();
    let fast2 = fast.clone();
    sim.spawn("producer", move |ctx| {
        ctx.advance(us(3));
        fast2.add(&ctx.handle(), 2);
    });
    sim.spawn("consumer", move |ctx| {
        // Met before the deadline.
        assert!(ctx.wait_count_timeout(&fast, 2, us(10)));
        assert_eq!(ctx.now().as_micros_f64(), 3.0);
        // Never met: expires at the deadline instead of hanging.
        assert!(!ctx.wait_count_timeout(&slow, 1, us(5)));
        assert_eq!(ctx.now().as_micros_f64(), 8.0);
    });
    sim.run().unwrap();
}

#[test]
fn process_panic_is_reported() {
    let mut sim = Simulation::with_seed(1);
    sim.spawn("boom", |_ctx| panic!("kaboom: {}", 42));
    match sim.run() {
        Err(SimError::ProcessPanic { name, message }) => {
            assert_eq!(name, "boom");
            assert!(message.contains("kaboom: 42"));
        }
        other => panic!("expected panic error, got {other:?}"),
    }
}

#[test]
fn daemons_are_released_at_shutdown() {
    let mut sim = Simulation::with_seed(1);
    let polls = Arc::new(AtomicU64::new(0));
    let polls2 = polls.clone();
    sim.spawn_daemon("poller", move |ctx| {
        while !ctx.is_shutdown() {
            polls2.fetch_add(1, Ordering::Relaxed);
            ctx.advance(us(1));
        }
    });
    sim.spawn("worker", move |ctx| {
        ctx.advance(us(10));
    });
    let report = sim.run().unwrap();
    // The poller ran ~10-11 times then observed shutdown.
    let n = polls.load(Ordering::Relaxed);
    assert!((10..=12).contains(&n), "poller polled {n} times");
    assert!(report.end_time >= SimTime::from_nanos(10_000));
}

#[test]
fn daemon_blocked_on_event_is_released() {
    let mut sim = Simulation::with_seed(1);
    let never = Event::new();
    sim.spawn_daemon("waiter", move |ctx| {
        let fired = ctx.wait(&never);
        assert!(!fired, "released by shutdown, not by event");
    });
    sim.spawn("worker", move |ctx| ctx.advance(us(1)));
    sim.run().unwrap();
}

#[test]
fn channel_delivers_in_order() {
    let mut sim = Simulation::with_seed(1);
    let ch: SimChannel<u64> = SimChannel::new();
    let ch2 = ch.clone();
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = out.clone();
    sim.spawn("rx", move |ctx| {
        for _ in 0..3 {
            out2.lock().push((ch2.recv(ctx), ctx.now().as_micros_f64()));
        }
    });
    let ch3 = ch.clone();
    sim.spawn("tx", move |ctx| {
        for v in 0..3u64 {
            ctx.advance(us(10));
            ch3.send(&ctx.handle(), v);
        }
    });
    sim.run().unwrap();
    assert_eq!(*out.lock(), vec![(0, 10.0), (1, 20.0), (2, 30.0)]);
}

#[test]
fn count_event_thresholds() {
    let mut sim = Simulation::with_seed(1);
    let counter = CountEvent::new();
    let c2 = counter.clone();
    sim.spawn("waiter", move |ctx| {
        ctx.wait_count(&c2, 3);
        assert_eq!(ctx.now().as_micros_f64(), 30.0);
        assert_eq!(c2.count(), 3);
    });
    let c3 = counter.clone();
    sim.spawn("adder", move |ctx| {
        for _ in 0..3 {
            ctx.advance(us(10));
            c3.add(&ctx.handle(), 1);
        }
    });
    sim.run().unwrap();
}

#[test]
fn barrier_synchronizes_all_parties() {
    let mut sim = Simulation::with_seed(1);
    let barrier = SimBarrier::new(3);
    let release_times = Arc::new(Mutex::new(Vec::new()));
    for (i, d) in [5u64, 15, 25].into_iter().enumerate() {
        let b = barrier.clone();
        let rt = release_times.clone();
        sim.spawn(format!("p{i}"), move |ctx| {
            ctx.advance(us(d));
            b.wait(ctx);
            rt.lock().push(ctx.now().as_micros_f64());
        });
    }
    sim.run().unwrap();
    assert_eq!(*release_times.lock(), vec![25.0, 25.0, 25.0]);
}

#[test]
fn barrier_is_reusable() {
    let mut sim = Simulation::with_seed(1);
    let barrier = SimBarrier::new(2);
    let log = Arc::new(Mutex::new(Vec::new()));
    for (i, d) in [3u64, 7].into_iter().enumerate() {
        let b = barrier.clone();
        let log2 = log.clone();
        sim.spawn(format!("p{i}"), move |ctx| {
            for round in 0..3 {
                ctx.advance(us(d));
                b.wait(ctx);
                log2.lock().push((round, i, ctx.now().as_micros_f64()));
            }
        });
    }
    sim.run().unwrap();
    let log = log.lock();
    // Each round releases both at the slower party's arrival time.
    for round in 0..3u64 {
        let times: Vec<f64> =
            log.iter().filter(|(r, _, _)| *r == round).map(|(_, _, t)| *t).collect();
        assert_eq!(times.len(), 2);
        assert_eq!(times[0], times[1], "round {round}");
    }
}

#[test]
fn determinism_same_seed_same_trace() {
    fn run_once(seed: u64) -> Vec<(u64, u64)> {
        let mut sim = Simulation::with_seed(seed);
        let trace = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4u64 {
            let trace2 = trace.clone();
            sim.spawn(format!("p{i}"), move |ctx| {
                for _ in 0..5 {
                    let jitter = ctx.jitter_us(10.0, 2.0);
                    ctx.advance(jitter);
                    trace2.lock().push((i, ctx.now().as_nanos()));
                }
            });
        }
        sim.run().unwrap();
        let t = trace.lock().clone();
        t
    }
    assert_eq!(run_once(99), run_once(99));
    assert_ne!(run_once(99), run_once(100));
}

#[test]
fn report_counts_events() {
    let mut sim = Simulation::with_seed(1);
    sim.spawn("p", move |ctx| {
        for _ in 0..10 {
            ctx.advance(us(1));
        }
    });
    let report = sim.run().unwrap();
    // 1 initial resume + 10 advances.
    assert!(report.events_processed >= 11);
    assert_eq!(report.processes, 1);
}

#[test]
fn many_processes_scale() {
    let mut sim = Simulation::with_seed(1);
    let sum = Arc::new(AtomicU64::new(0));
    for i in 0..64u64 {
        let sum2 = sum.clone();
        sim.spawn(format!("p{i}"), move |ctx| {
            ctx.advance(us(i % 7));
            sum2.fetch_add(1, Ordering::Relaxed);
        });
    }
    sim.run().unwrap();
    assert_eq!(sum.load(Ordering::Relaxed), 64);
}
