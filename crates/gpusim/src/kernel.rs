//! Kernel launches and the device-side execution context.
//!
//! A kernel is described by a [`KernelSpec`] (geometry + per-thread resource
//! counts, which drive the cost model) and an optional **body closure** that
//! runs once per launch against a [`DeviceCtx`]. The body performs the
//! kernel's *functional* effects (reading/writing simulated buffers) and
//! records *timed* device-side actions — notification-flag writes, in-kernel
//! NVLink stores — as offsets within the kernel's execution window. The
//! stream engine then schedules those actions as simulation callbacks at
//! `kernel_start + offset`.
//!
//! This keeps the programming model close to the paper's Listing 2 — the
//! body is "the kernel", and calling the device-side partitioned API inside
//! it both moves data and costs time — without simulating 10⁸ CUDA threads
//! individually.

use parcomm_sim::{Event, SimDuration, SimHandle, SimTime, SpanId};

use crate::cost::CostModel;

/// What kind of device-visible side effect an emission is. The stream
/// engine classifies each kind against its own fault schedule: pinned-host
/// flag writes (the PE/KC notification path) against the flag schedule,
/// symmetric-heap signals (the shmem one-sided path) against the shmem
/// schedule — so chaos campaigns can fault one mechanism without touching
/// the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EmissionKind {
    /// A pinned-host notification-flag write (`MPIX_Pready` device flag).
    FlagWrite,
    /// A symmetric-heap one-sided put/signal emission.
    Shmem,
}

/// A timed device-side action: a callback scheduled at an offset within
/// the kernel's execution window. The callback receives the kernel's own
/// trace span ([`SpanId::NONE`] when tracing is off) so the actions a
/// kernel emits — notification-flag writes above all — can be causally
/// chained to the kernel that produced them.
type Emission = (SimDuration, EmissionKind, Box<dyn FnOnce(&SimHandle, SpanId) + Send + 'static>);

/// Geometry and resource description of a kernel launch.
#[derive(Clone, Debug)]
pub struct KernelSpec {
    /// Kernel name (diagnostics only).
    pub name: &'static str,
    /// Number of thread blocks ("grid size" in the paper's figures).
    pub grid_dim: u32,
    /// Threads per block (≤ 1024 on Hopper).
    pub block_dim: u32,
    /// Bytes each thread reads from global memory.
    pub bytes_read_per_thread: u64,
    /// Bytes each thread writes to global memory.
    pub bytes_written_per_thread: u64,
    /// Floating-point operations per thread.
    pub flops_per_thread: f64,
}

impl KernelSpec {
    /// A kernel with the given geometry and no modeled memory/compute
    /// traffic (cost = fixed launch cost only).
    pub fn new(name: &'static str, grid_dim: u32, block_dim: u32) -> Self {
        assert!((1..=1024).contains(&block_dim), "block_dim must be 1..=1024");
        assert!(grid_dim >= 1, "grid_dim must be >= 1");
        KernelSpec {
            name,
            grid_dim,
            block_dim,
            bytes_read_per_thread: 0,
            bytes_written_per_thread: 0,
            flops_per_thread: 0.0,
        }
    }

    /// Set per-thread global-memory traffic (read, written) in bytes.
    pub fn with_memory_traffic(mut self, read: u64, written: u64) -> Self {
        self.bytes_read_per_thread = read;
        self.bytes_written_per_thread = written;
        self
    }

    /// Set per-thread flop count.
    pub fn with_flops(mut self, flops: f64) -> Self {
        self.flops_per_thread = flops;
        self
    }

    /// The paper's vector-add workload: `C = A + B`, 8 B elements, so each
    /// thread reads 16 B, writes 8 B, and does 1 flop.
    pub fn vector_add(grid_dim: u32, block_dim: u32) -> Self {
        KernelSpec::new("vector_add", grid_dim, block_dim)
            .with_memory_traffic(16, 8)
            .with_flops(1.0)
    }

    /// Total threads in the launch.
    pub fn threads(&self) -> u64 {
        self.grid_dim as u64 * self.block_dim as u64
    }
}

/// The device-side context a kernel body runs against.
///
/// Provides the clock-free facilities a kernel has: extending its own
/// execution time (modeling in-kernel communication work) and scheduling
/// timed emissions (flag writes, copy completions) at offsets inside its
/// execution window.
pub struct DeviceCtx<'a> {
    spec: &'a KernelSpec,
    cost: &'a CostModel,
    handle: &'a SimHandle,
    start: SimTime,
    /// Duration of the pure-compute phase (from the spec).
    compute: SimDuration,
    /// Extra device time accumulated by in-kernel communication.
    extra: SimDuration,
    /// Timed actions: (offset from kernel start, callback).
    emissions: Vec<Emission>,
    /// Host-flag writes already issued by this kernel (the fixed drain
    /// latency `a` of the `a + n·b` model is paid once per kernel).
    flag_writes_done: u32,
}

impl<'a> DeviceCtx<'a> {
    pub(crate) fn new(
        spec: &'a KernelSpec,
        cost: &'a CostModel,
        handle: &'a SimHandle,
        start: SimTime,
    ) -> Self {
        let compute = cost.kernel_duration(spec);
        DeviceCtx {
            spec,
            cost,
            handle,
            start,
            compute,
            extra: SimDuration::ZERO,
            emissions: Vec::new(),
            flag_writes_done: 0,
        }
    }

    /// The launch geometry of this kernel.
    pub fn spec(&self) -> &KernelSpec {
        self.spec
    }

    /// The cost model of the device this kernel runs on.
    pub fn cost(&self) -> &CostModel {
        self.cost
    }

    /// Virtual instant at which this kernel starts executing on the device.
    pub fn start_time(&self) -> SimTime {
        self.start
    }

    /// Duration of the compute phase (before any in-kernel communication
    /// tail added with [`extend`](Self::extend)).
    pub fn compute_duration(&self) -> SimDuration {
        self.compute
    }

    /// Offset of the current end of the kernel (compute + accumulated extra).
    pub fn current_end_offset(&self) -> SimDuration {
        self.compute + self.extra
    }

    /// Add device time to this kernel (in-kernel sync, flag writes, NVLink
    /// stores). Returns the new end offset.
    pub fn extend(&mut self, d: SimDuration) -> SimDuration {
        self.extra += d;
        self.current_end_offset()
    }

    /// Schedule `cb` to run at `offset` from kernel start. The kernel's
    /// execution window is *not* implicitly extended; call
    /// [`extend`](Self::extend) for actions that occupy the device.
    pub fn at_offset(&mut self, offset: SimDuration, cb: impl FnOnce(&SimHandle) + Send + 'static) {
        self.emissions.push((offset, EmissionKind::FlagWrite, Box::new(move |h, _span| cb(h))));
    }

    /// Like [`at_offset`](Self::at_offset), but the callback also receives
    /// the emitting kernel's trace span ([`SpanId::NONE`] when tracing is
    /// off), letting device notifications record causally-linked spans.
    pub fn at_offset_traced(
        &mut self,
        offset: SimDuration,
        cb: impl FnOnce(&SimHandle, SpanId) + Send + 'static,
    ) {
        self.emissions.push((offset, EmissionKind::FlagWrite, Box::new(cb)));
    }

    /// Like [`at_offset_traced`](Self::at_offset_traced), but tagged as a
    /// symmetric-heap emission: the stream engine classifies it against the
    /// GPU's *shmem* signal fault schedule
    /// ([`Gpu::arm_shmem_signal_faults`](crate::Gpu::arm_shmem_signal_faults))
    /// instead of the notification-flag schedule.
    pub fn at_offset_shmem_traced(
        &mut self,
        offset: SimDuration,
        cb: impl FnOnce(&SimHandle, SpanId) + Send + 'static,
    ) {
        self.emissions.push((offset, EmissionKind::Shmem, Box::new(cb)));
    }

    /// Non-blocking access to the simulation (e.g. for reading the RNG).
    pub fn sim(&self) -> &SimHandle {
        self.handle
    }

    /// Cost (µs) of issuing `n` more pinned-host notification writes from
    /// this kernel. The first train of the kernel pays the fixed drain
    /// latency `a`; later trains (e.g. additional channels in the same
    /// kernel) ride the already-primed pipeline and pay only `n·b`.
    pub fn flag_write_train_us(&mut self, n: u32) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let base = if self.flag_writes_done == 0 { self.cost.host_flag_write_base_us } else { 0.0 };
        self.flag_writes_done += n;
        base + n as f64 * self.cost.host_flag_write_per_us
    }

    pub(crate) fn finish(self) -> (SimDuration, Vec<Emission>) {
        (self.compute + self.extra, self.emissions)
    }
}

/// Handle to an in-flight (or completed) kernel launch.
#[derive(Clone, Debug)]
pub struct LaunchHandle {
    /// Fires when the kernel's execution window closes.
    pub done: Event,
    /// Kernel start on the device.
    pub start: SimTime,
    /// Kernel end on the device.
    pub end: SimTime,
    /// Trace span of the launch ([`SpanId::NONE`] when tracing is off).
    pub span: SpanId,
}

impl LaunchHandle {
    /// Device-side execution duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}
