//! Simulated memory: host, pinned-host, and GPU global buffers.
//!
//! A [`Buffer`] is the functional backing store for every payload in the
//! simulation — send/receive buffers, partition flags, collective scratch.
//! Data really moves: an RMA put copies bytes from the source buffer into the
//! destination buffer, so numerical results (allreduce sums, Jacobi residuals)
//! are exact and testable.
//!
//! Offsets in this API are **byte offsets**, mirroring RMA semantics; typed
//! helpers (`*_f64`, `*_f32`) do the element math. All accessors are
//! bounds-checked and panic on out-of-range access — in a communication
//! runtime an out-of-range RMA is a correctness bug we want loud.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parcomm_sim::Mutex;

/// Globally unique buffer identity (used by registration / rkeys).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BufferId(pub u64);

/// Where a node-local hardware unit lives in the cluster.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Location {
    /// Node (host) index within the cluster.
    pub node: u16,
    /// The unit on that node.
    pub unit: Unit,
}

/// A hardware unit on a node.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Unit {
    /// The host CPU (Grace).
    Cpu,
    /// GPU with the given on-node index (Hopper).
    Gpu(u8),
}

/// The memory space a buffer lives in; determines transfer routing and
/// access costs.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MemSpace {
    /// Pageable host DRAM.
    Host {
        /// Owning node.
        node: u16,
    },
    /// Page-locked host DRAM, accessible by devices over NVLink-C2C. Used
    /// for the progression-engine notification flags.
    PinnedHost {
        /// Owning node.
        node: u16,
    },
    /// GPU global memory (HBM3).
    Device {
        /// Owning node.
        node: u16,
        /// Owning GPU index on that node.
        gpu: u8,
    },
}

impl MemSpace {
    /// The location whose memory controller owns this space.
    pub fn location(self) -> Location {
        match self {
            MemSpace::Host { node } | MemSpace::PinnedHost { node } => {
                Location { node, unit: Unit::Cpu }
            }
            MemSpace::Device { node, gpu } => Location { node, unit: Unit::Gpu(gpu) },
        }
    }

    /// The owning node.
    pub fn node(self) -> u16 {
        match self {
            MemSpace::Host { node } | MemSpace::PinnedHost { node } => node,
            MemSpace::Device { node, .. } => node,
        }
    }

    /// True for device (HBM) memory.
    pub fn is_device(self) -> bool {
        matches!(self, MemSpace::Device { .. })
    }

    /// True for page-locked host memory.
    pub fn is_pinned_host(self) -> bool {
        matches!(self, MemSpace::PinnedHost { .. })
    }
}

static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(1);

struct BufInner {
    id: BufferId,
    space: MemSpace,
    bytes: Mutex<Vec<u8>>,
}

/// A reference-counted simulated memory buffer. Cheap to clone.
#[derive(Clone)]
pub struct Buffer {
    inner: Arc<BufInner>,
}

impl Buffer {
    /// Allocate a zero-initialized buffer of `len` bytes in `space`.
    pub fn alloc(space: MemSpace, len: usize) -> Buffer {
        Buffer {
            inner: Arc::new(BufInner {
                id: BufferId(NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed)),
                space,
                bytes: Mutex::new(vec![0u8; len]),
            }),
        }
    }

    /// This buffer's globally unique id.
    pub fn id(&self) -> BufferId {
        self.inner.id
    }

    /// The memory space this buffer lives in.
    pub fn space(&self) -> MemSpace {
        self.inner.space
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.bytes.lock().len()
    }

    /// True when zero-length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `self` and `other` share the same allocation.
    pub fn same_allocation(&self, other: &Buffer) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    // ---- raw byte access -------------------------------------------------

    /// Copy `src` into the buffer at `offset`.
    pub fn write_bytes(&self, offset: usize, src: &[u8]) {
        let mut b = self.inner.bytes.lock();
        b[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Read `len` bytes starting at `offset`.
    pub fn read_bytes(&self, offset: usize, len: usize) -> Vec<u8> {
        let b = self.inner.bytes.lock();
        b[offset..offset + len].to_vec()
    }

    /// Zero-fill the whole buffer.
    pub fn zero(&self) {
        self.inner.bytes.lock().fill(0);
    }

    /// Functional copy between buffers (the data plane of an RMA put or a
    /// DMA memcpy). Handles the same-allocation case with a scratch copy.
    pub fn copy_from_buffer(&self, dst_offset: usize, src: &Buffer, src_offset: usize, len: usize) {
        if self.same_allocation(src) {
            let tmp = src.read_bytes(src_offset, len);
            self.write_bytes(dst_offset, &tmp);
            return;
        }
        let src_guard = src.inner.bytes.lock();
        let mut dst_guard = self.inner.bytes.lock();
        dst_guard[dst_offset..dst_offset + len]
            .copy_from_slice(&src_guard[src_offset..src_offset + len]);
    }

    /// Run `f` over the raw bytes (read-only).
    pub fn with_bytes<T>(&self, f: impl FnOnce(&[u8]) -> T) -> T {
        f(&self.inner.bytes.lock())
    }

    /// Run `f` over the raw bytes (mutable).
    pub fn with_bytes_mut<T>(&self, f: impl FnOnce(&mut [u8]) -> T) -> T {
        f(&mut self.inner.bytes.lock())
    }

    // ---- f64 views -------------------------------------------------------

    /// Write a slice of `f64` at a byte offset.
    pub fn write_f64_slice(&self, byte_offset: usize, src: &[f64]) {
        let mut b = self.inner.bytes.lock();
        let dst = &mut b[byte_offset..byte_offset + src.len() * 8];
        for (chunk, v) in dst.chunks_exact_mut(8).zip(src) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Read `n` `f64` values from a byte offset.
    pub fn read_f64_slice(&self, byte_offset: usize, n: usize) -> Vec<f64> {
        let b = self.inner.bytes.lock();
        b[byte_offset..byte_offset + n * 8]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect()
    }

    /// Read a single `f64`.
    pub fn read_f64(&self, byte_offset: usize) -> f64 {
        let b = self.inner.bytes.lock();
        f64::from_le_bytes(b[byte_offset..byte_offset + 8].try_into().expect("8 bytes"))
    }

    /// Write a single `f64`.
    pub fn write_f64(&self, byte_offset: usize, v: f64) {
        self.write_bytes(byte_offset, &v.to_le_bytes());
    }

    /// Apply `f` elementwise to `n` `f64`s in place.
    pub fn map_f64_inplace(&self, byte_offset: usize, n: usize, mut f: impl FnMut(f64) -> f64) {
        let mut b = self.inner.bytes.lock();
        for chunk in b[byte_offset..byte_offset + n * 8].chunks_exact_mut(8) {
            let v = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            chunk.copy_from_slice(&f(v).to_le_bytes());
        }
    }

    /// `self[dst..] += other[src..]` over `n` `f64` elements — the reduction
    /// data plane for allreduce.
    pub fn accumulate_f64(&self, dst_offset: usize, other: &Buffer, src_offset: usize, n: usize) {
        let src = other.read_f64_slice(src_offset, n);
        let mut b = self.inner.bytes.lock();
        for (chunk, s) in b[dst_offset..dst_offset + n * 8].chunks_exact_mut(8).zip(src) {
            let v = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            chunk.copy_from_slice(&(v + s).to_le_bytes());
        }
    }

    /// Sum of `n` `f64` elements.
    pub fn reduce_sum_f64(&self, byte_offset: usize, n: usize) -> f64 {
        let b = self.inner.bytes.lock();
        b[byte_offset..byte_offset + n * 8]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .sum()
    }

    // ---- f32 views -------------------------------------------------------

    /// Write a slice of `f32` at a byte offset.
    pub fn write_f32_slice(&self, byte_offset: usize, src: &[f32]) {
        let mut b = self.inner.bytes.lock();
        let dst = &mut b[byte_offset..byte_offset + src.len() * 4];
        for (chunk, v) in dst.chunks_exact_mut(4).zip(src) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Read `n` `f32` values from a byte offset.
    pub fn read_f32_slice(&self, byte_offset: usize, n: usize) -> Vec<f32> {
        let b = self.inner.bytes.lock();
        b[byte_offset..byte_offset + n * 4]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect()
    }

    /// Apply `f` elementwise to `n` `f32`s in place.
    pub fn map_f32_inplace(&self, byte_offset: usize, n: usize, mut f: impl FnMut(f32) -> f32) {
        let mut b = self.inner.bytes.lock();
        for chunk in b[byte_offset..byte_offset + n * 4].chunks_exact_mut(4) {
            let v = f32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            chunk.copy_from_slice(&f(v).to_le_bytes());
        }
    }

    // ---- u64 flag words (partition status) --------------------------------

    /// Read flag word `index` (8-byte stride).
    pub fn read_flag(&self, index: usize) -> u64 {
        let b = self.inner.bytes.lock();
        u64::from_le_bytes(b[index * 8..index * 8 + 8].try_into().expect("8 bytes"))
    }

    /// Write flag word `index`.
    pub fn write_flag(&self, index: usize, v: u64) {
        self.write_bytes(index * 8, &v.to_le_bytes());
    }
}

impl std::fmt::Debug for Buffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Buffer")
            .field("id", &self.inner.id)
            .field("space", &self.inner.space)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host_buf(len: usize) -> Buffer {
        Buffer::alloc(MemSpace::Host { node: 0 }, len)
    }

    #[test]
    fn alloc_is_zeroed_and_ids_unique() {
        let a = host_buf(16);
        let b = host_buf(16);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.read_bytes(0, 16), vec![0u8; 16]);
    }

    #[test]
    fn f64_roundtrip() {
        let b = host_buf(64);
        let data = [1.5, -2.25, 3.75, 0.0];
        b.write_f64_slice(8, &data);
        assert_eq!(b.read_f64_slice(8, 4), data);
        assert_eq!(b.read_f64(8), 1.5);
    }

    #[test]
    fn f32_roundtrip() {
        let b = host_buf(32);
        let data = [1.5f32, -2.25, 3.75];
        b.write_f32_slice(4, &data);
        assert_eq!(b.read_f32_slice(4, 3), data);
    }

    #[test]
    fn copy_between_buffers() {
        let src = host_buf(32);
        let dst = host_buf(32);
        src.write_f64_slice(0, &[7.0, 8.0]);
        dst.copy_from_buffer(16, &src, 0, 16);
        assert_eq!(dst.read_f64_slice(16, 2), vec![7.0, 8.0]);
    }

    #[test]
    fn copy_within_same_allocation() {
        let b = host_buf(32);
        b.write_f64_slice(0, &[1.0, 2.0]);
        let alias = b.clone();
        alias.copy_from_buffer(16, &b, 0, 16);
        assert_eq!(b.read_f64_slice(16, 2), vec![1.0, 2.0]);
    }

    #[test]
    fn accumulate_adds() {
        let a = host_buf(24);
        let b = host_buf(24);
        a.write_f64_slice(0, &[1.0, 2.0, 3.0]);
        b.write_f64_slice(0, &[10.0, 20.0, 30.0]);
        a.accumulate_f64(0, &b, 0, 3);
        assert_eq!(a.read_f64_slice(0, 3), vec![11.0, 22.0, 33.0]);
        assert_eq!(a.reduce_sum_f64(0, 3), 66.0);
    }

    #[test]
    fn map_inplace() {
        let b = host_buf(16);
        b.write_f64_slice(0, &[2.0, 3.0]);
        b.map_f64_inplace(0, 2, |x| x * x);
        assert_eq!(b.read_f64_slice(0, 2), vec![4.0, 9.0]);
    }

    #[test]
    fn flags() {
        let b = host_buf(32);
        b.write_flag(2, 0xDEAD);
        assert_eq!(b.read_flag(2), 0xDEAD);
        assert_eq!(b.read_flag(0), 0);
        b.zero();
        assert_eq!(b.read_flag(2), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        host_buf(8).write_bytes(4, &[0u8; 8]);
    }

    #[test]
    fn memspace_properties() {
        let d = MemSpace::Device { node: 1, gpu: 2 };
        assert!(d.is_device());
        assert_eq!(d.location(), Location { node: 1, unit: Unit::Gpu(2) });
        let p = MemSpace::PinnedHost { node: 3 };
        assert!(p.is_pinned_host());
        assert_eq!(p.location().unit, Unit::Cpu);
        assert_eq!(p.node(), 3);
    }
}
