//! The calibrated GPU cost model.
//!
//! Every latency and bandwidth constant that shapes the paper's figures is a
//! field here, with the calibration anchor recorded next to it. Values are
//! derived from the paper's own measurements on the GH200 testbed (see
//! DESIGN.md §2); they are *model inputs*, so experiments can also sweep them
//! for ablations.

use parcomm_sim::SimDuration;

use crate::kernel::KernelSpec;

/// Aggregation granularity for device-side `MPIX_Pready` notification writes
/// (paper §IV-A4, Figure 3).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum AggLevel {
    /// Every CUDA thread writes its own flag into host memory
    /// (`MPIX_Pready_thread`, the MPI-ACX-style baseline).
    Thread,
    /// Threads synchronize with `__syncwarp()`; lane 0 writes one flag per
    /// warp (`MPIX_Pready_warp`).
    Warp,
    /// Threads synchronize with `__syncthreads()`; thread 0 writes one flag
    /// per block (`MPIX_Pready_block`).
    Block,
}

impl AggLevel {
    /// Number of host-memory flag writes a kernel of `threads` threads
    /// performs at this aggregation level (one block assumed ≤ 1024 threads;
    /// for multi-block launches, multiply by blocks at `Block` level).
    pub fn writes_for_threads(self, threads: u32) -> u32 {
        match self {
            AggLevel::Thread => threads,
            AggLevel::Warp => threads.div_ceil(32),
            AggLevel::Block => 1,
        }
    }
}

/// The GPU + NVLink-C2C latency/bandwidth model.
///
/// All `*_us` fields are microseconds; bandwidths are GB/s (1e9 bytes/s).
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Host CPU time consumed by enqueuing a kernel launch (cudaLaunchKernel
    /// returning). Calibration: small-kernel total ≈ 10 µs with sync at
    /// 71.6–78.9 % (Fig. 2) leaves ≈ 2.2 µs for launch + execute.
    pub kernel_launch_host_us: f64,
    /// Latency from enqueue to the kernel starting on an idle device.
    pub kernel_launch_latency_us: f64,
    /// Fixed device-side cost per kernel (scheduling the first wave).
    pub kernel_fixed_us: f64,
    /// Effective HBM3 streaming bandwidth for kernel memory traffic.
    /// Calibration: 128K-grid vector add (3 × 8 B/thread × 134M threads
    /// ≈ 3.2 GB) ≈ 970 µs (Fig. 2) → ≈ 3.3 TB/s.
    pub hbm_bw_gbps: f64,
    /// Device compute throughput for the flop term (rarely binding for the
    /// streaming kernels in the paper).
    pub gflops: f64,
    /// Fixed cost of `cudaStreamSynchronize` observed by the host.
    /// Calibration: 7.8 ± 0.1 µs regardless of kernel size (Fig. 2).
    pub stream_sync_us: f64,
    /// Jitter (standard deviation) on the stream-sync cost.
    pub stream_sync_jitter_us: f64,
    /// Device→pinned-host flag write cost model `a + n·b`: the base cost
    /// `a` of draining one notification over NVLink-C2C…
    /// Calibration: thread/block = 271.5×, warp/block = 9.4× at 1024
    /// threads (Fig. 3) → a ≈ 2.78·b.
    pub host_flag_write_base_us: f64,
    /// …and the per-write increment `b` (serialized device-side stores).
    pub host_flag_write_per_us: f64,
    /// In-kernel synchronization cost for warp-level aggregation
    /// (`__syncwarp` + lane election), per warp group.
    pub syncwarp_us: f64,
    /// In-kernel synchronization cost for block-level aggregation
    /// (`__syncthreads`), per block.
    pub syncthreads_us: f64,
    /// One atomic add on a counter in GPU global memory (multi-block
    /// aggregation, `MPIX_Prequest_create` counters).
    pub device_atomic_us: f64,
    /// Host read of a pinned-host flag (progression-engine poll).
    pub host_flag_read_us: f64,
    /// Device read of a flag in GPU global memory (`MPIX_Parrived` device
    /// binding; paper: much cheaper than host memory).
    pub device_flag_read_us: f64,
    /// Host-side cost to post one *data* `ucp_put_nbx` for device memory:
    /// UCX protocol selection, descriptor build, doorbell, DMA-engine
    /// start-up. This is the software path the Kernel Copy design removes.
    pub data_put_post_us: f64,
    /// Host-side cost to post a small *control* put (partition flags,
    /// completion signals).
    pub control_put_post_us: f64,
    /// Memory fence closing a kernel's fire-and-forget NVLink stores
    /// (`__threadfence_system`).
    pub kernel_store_fence_us: f64,
    /// Progression-engine poll interval (how often the MPI runtime's
    /// progress thread inspects flags and the UCX worker).
    pub progress_poll_us: f64,
    /// Device-side cost of issuing one symmetric-heap one-sided put
    /// (`shmem_put`-style): local offset translation plus pushing the
    /// descriptor onto the NVLink store path. Slightly above the launch
    /// latency class of costs, far below the host's `data_put_post_us` —
    /// this gap is the mechanism's whole advantage.
    pub shmem_put_issue_us: f64,
    /// Device-side cost of the completion signal paired with a shmem put
    /// (`shmem_signal`-style flag store on the target), paid on the wire
    /// side after arrival.
    pub shmem_signal_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            kernel_launch_host_us: 1.0,
            kernel_launch_latency_us: 1.2,
            kernel_fixed_us: 0.9,
            hbm_bw_gbps: 3300.0,
            gflops: 60_000.0,
            stream_sync_us: 7.8,
            stream_sync_jitter_us: 0.1,
            host_flag_write_base_us: 0.97,
            host_flag_write_per_us: 0.35,
            syncwarp_us: 0.05,
            syncthreads_us: 0.15,
            device_atomic_us: 0.02,
            host_flag_read_us: 0.10,
            device_flag_read_us: 0.02,
            data_put_post_us: 2.6,
            control_put_post_us: 0.5,
            kernel_store_fence_us: 0.3,
            progress_poll_us: 0.50,
            shmem_put_issue_us: 1.2,
            shmem_signal_us: 0.5,
        }
    }
}

impl CostModel {
    /// Device-side execution time for a kernel: fixed cost plus the larger
    /// of the memory-streaming and compute terms.
    pub fn kernel_duration(&self, spec: &KernelSpec) -> SimDuration {
        let threads = spec.threads() as f64;
        let bytes = (spec.bytes_read_per_thread + spec.bytes_written_per_thread) as f64 * threads;
        let mem_us = bytes / (self.hbm_bw_gbps * 1e3); // GB/s = bytes/µs·1e3
        let compute_us = (spec.flops_per_thread * threads) / (self.gflops * 1e3);
        SimDuration::from_micros_f64(self.kernel_fixed_us + mem_us.max(compute_us))
    }

    /// Total in-kernel cost of emitting `n` notification writes into pinned
    /// host memory: `a + n·b` (Fig. 3 model).
    pub fn host_flag_writes_us(&self, n: u32) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.host_flag_write_base_us + n as f64 * self.host_flag_write_per_us
    }

    /// In-kernel aggregation overhead (sync cost) for marking `threads`
    /// thread-partitions ready at `level`, excluding the host writes.
    pub fn aggregation_sync_us(&self, level: AggLevel, threads: u32) -> f64 {
        match level {
            AggLevel::Thread => 0.0,
            AggLevel::Warp => self.syncwarp_us * threads.div_ceil(32) as f64,
            AggLevel::Block => self.syncthreads_us,
        }
    }

    /// Full device-side cost (µs) of an aggregated Pready for a single block
    /// of `threads` threads: sync + host flag writes.
    pub fn pready_cost_us(&self, level: AggLevel, threads: u32) -> f64 {
        self.aggregation_sync_us(level, threads)
            + self.host_flag_writes_us(level.writes_for_threads(threads))
    }

    /// Host-observed stream synchronize cost (no jitter applied).
    pub fn stream_sync(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.stream_sync_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelSpec;

    fn vec_add(grid: u32) -> KernelSpec {
        KernelSpec::new("vec_add", grid, 1024).with_memory_traffic(16, 8)
    }

    #[test]
    fn kernel_duration_scales_with_grid() {
        let cm = CostModel::default();
        let small = cm.kernel_duration(&vec_add(1));
        let large = cm.kernel_duration(&vec_add(128 * 1024));
        assert!(small < large);
        // Calibration anchors from Fig. 2: tiny kernel ≈ 1 µs device time,
        // 128K-grid kernel ≈ 950-1000 µs.
        assert!(small.as_micros_f64() < 2.0, "small = {small}");
        let l = large.as_micros_f64();
        assert!((900.0..1100.0).contains(&l), "large = {l}");
    }

    #[test]
    fn sync_fraction_matches_paper() {
        // For small kernels, sync should be ~72-79% of launch+exec+sync.
        let cm = CostModel::default();
        let total = cm.kernel_launch_host_us
            + cm.kernel_launch_latency_us
            + cm.kernel_duration(&vec_add(1)).as_micros_f64()
            + cm.stream_sync_us;
        let frac = cm.stream_sync_us / total;
        assert!((0.70..0.80).contains(&frac), "sync fraction {frac}");
    }

    #[test]
    fn aggregation_ratios_match_fig3() {
        let cm = CostModel::default();
        let block = cm.pready_cost_us(AggLevel::Block, 1024);
        let warp = cm.pready_cost_us(AggLevel::Warp, 1024);
        let thread = cm.pready_cost_us(AggLevel::Thread, 1024);
        let t_over_b = thread / block;
        let w_over_b = warp / block;
        // Paper: thread 271.5× block, warp 9.4× block. Model should land in
        // the same decade with the right ordering.
        assert!(t_over_b > 150.0 && t_over_b < 400.0, "thread/block = {t_over_b}");
        assert!(w_over_b > 5.0 && w_over_b < 15.0, "warp/block = {w_over_b}");
        assert!(block < warp && warp < thread);
    }

    #[test]
    fn single_thread_costs_equal_across_levels() {
        // Paper Fig. 3: "for a single thread, the cost is the same (within
        // error) for all three methods" — one write each; only tiny sync
        // overhead differs.
        let cm = CostModel::default();
        let t = cm.pready_cost_us(AggLevel::Thread, 1);
        let w = cm.pready_cost_us(AggLevel::Warp, 1);
        let b = cm.pready_cost_us(AggLevel::Block, 1);
        assert!((w - t).abs() / t < 0.2);
        assert!((b - t).abs() / t < 0.2);
    }

    #[test]
    fn writes_for_threads_counts() {
        assert_eq!(AggLevel::Thread.writes_for_threads(1024), 1024);
        assert_eq!(AggLevel::Warp.writes_for_threads(1024), 32);
        assert_eq!(AggLevel::Warp.writes_for_threads(33), 2);
        assert_eq!(AggLevel::Block.writes_for_threads(1024), 1);
    }

    #[test]
    fn zero_writes_cost_nothing() {
        assert_eq!(CostModel::default().host_flag_writes_us(0), 0.0);
    }
}
