//! CUDA-style streams: FIFO queues of device operations.
//!
//! A stream tracks a `busy_until` horizon. Each enqueued operation begins at
//! `max(enqueue_time + launch_latency, busy_until)` and advances the horizon
//! by its duration, which reproduces FIFO in-order execution and the
//! back-to-back pipelining of consecutive launches.
//!
//! `synchronize` reproduces the paper's `cudaStreamSynchronize` behaviour:
//! the host blocks until the last enqueued operation completes, then pays the
//! fixed ~7.8 µs synchronization cost (Fig. 2) regardless of how much device
//! work was pending.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_sim::{Ctx, Event, SimDuration, SimHandle, SimTime, SpanId};

use crate::cost::CostModel;
use crate::faults::{EmissionFate, EmissionFaults};
use crate::kernel::{DeviceCtx, EmissionKind, KernelSpec, LaunchHandle};
use crate::obs::GpuObs;

struct StreamState {
    busy_until: SimTime,
    /// Completion event of the most recently enqueued operation; starts set
    /// (an idle stream synchronizes immediately).
    tail_done: Event,
}

/// A FIFO stream of device operations on one GPU.
#[derive(Clone)]
pub struct Stream {
    inner: Arc<StreamInner>,
}

struct StreamInner {
    cost: CostModel,
    state: Mutex<StreamState>,
    gpu_name: String,
    /// The owning GPU's notification-flag fault schedule (shared across its
    /// streams).
    emission_faults: Arc<Mutex<Option<EmissionFaults>>>,
    /// The owning GPU's symmetric-heap signal fault schedule, kept separate
    /// so chaos campaigns can fault one mechanism without the other.
    shmem_faults: Arc<Mutex<Option<EmissionFaults>>>,
    /// The owning GPU's observability state (rank attribution + metrics).
    obs: Arc<GpuObs>,
}

impl Stream {
    pub(crate) fn new(
        cost: CostModel,
        handle: SimHandle,
        gpu_name: String,
        emission_faults: Arc<Mutex<Option<EmissionFaults>>>,
        shmem_faults: Arc<Mutex<Option<EmissionFaults>>>,
        obs: Arc<GpuObs>,
    ) -> Self {
        let tail_done = Event::new();
        tail_done.set(&handle); // idle stream: nothing to wait for
        Stream {
            inner: Arc::new(StreamInner {
                cost,
                state: Mutex::new(StreamState { busy_until: SimTime::ZERO, tail_done }),
                gpu_name,
                emission_faults,
                shmem_faults,
                obs,
            }),
        }
    }

    /// The owning device's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.inner.cost
    }

    /// Launch a kernel. Charges the host the launch-enqueue cost, runs the
    /// body against a [`DeviceCtx`] to collect functional effects and timed
    /// emissions, and returns a handle whose `done` event fires when the
    /// kernel's execution window closes.
    pub fn launch(
        &self,
        ctx: &mut Ctx,
        spec: KernelSpec,
        body: impl FnOnce(&mut DeviceCtx<'_>),
    ) -> LaunchHandle {
        // Host-side enqueue cost (cudaLaunchKernel).
        ctx.advance(SimDuration::from_micros_f64(self.inner.cost.kernel_launch_host_us));
        self.enqueue_kernel(&ctx.handle(), spec, body)
    }

    /// Launch from a non-process context (e.g. a progression-engine
    /// callback); no host time is charged.
    pub fn launch_from_handle(
        &self,
        h: &SimHandle,
        spec: KernelSpec,
        body: impl FnOnce(&mut DeviceCtx<'_>),
    ) -> LaunchHandle {
        self.enqueue_kernel(h, spec, body)
    }

    fn enqueue_kernel(
        &self,
        h: &SimHandle,
        spec: KernelSpec,
        body: impl FnOnce(&mut DeviceCtx<'_>),
    ) -> LaunchHandle {
        let now = h.now();
        let latency = SimDuration::from_micros_f64(self.inner.cost.kernel_launch_latency_us);
        let mut st = self.inner.state.lock();
        let start = (now + latency).max(st.busy_until);

        // Run the body "at launch": functional effects apply immediately
        // (never later than their visibility events), timed emissions are
        // scheduled below.
        let mut dctx = DeviceCtx::new(&spec, &self.inner.cost, h, start);
        body(&mut dctx);
        let (duration, emissions) = dctx.finish();

        let end = start + duration;
        st.busy_until = end;
        let done = Event::new();
        st.tail_done = done.clone();
        drop(st);

        let span =
            h.trace().record_attr("kernel", start, end, self.inner.obs.rank(), None, SpanId::NONE);
        self.inner.obs.count_kernel(emissions.len() as u64);
        for (offset, kind, cb) in emissions {
            // The window invariant is checked on the *natural* offset; an
            // injected delay may legitimately land past the window (the flag
            // write drains after the kernel retires).
            debug_assert!(
                offset <= duration,
                "kernel '{}' emission at {offset} beyond its window {duration}",
                spec.name
            );
            let schedule = match kind {
                EmissionKind::FlagWrite => &self.inner.emission_faults,
                EmissionKind::Shmem => &self.inner.shmem_faults,
            };
            let fate = match schedule.lock().as_mut() {
                Some(f) => f.classify(),
                None => EmissionFate::Normal,
            };
            match fate {
                EmissionFate::Normal => {
                    h.schedule_at(start + offset, move |h| cb(h, span));
                }
                EmissionFate::Delayed(extra_us) => h.schedule_at(
                    start + offset + SimDuration::from_micros_f64(extra_us),
                    move |h| cb(h, span),
                ),
                EmissionFate::Lost => {
                    // The flag write never becomes visible; downstream
                    // watchdogs turn the missing arrival into a typed error.
                }
            }
        }
        {
            let done = done.clone();
            h.schedule_at(end, move |h| done.set(h));
        }
        LaunchHandle { done, start, end, span }
    }

    /// Enqueue an opaque device-time operation of the given duration (e.g. a
    /// cudaMemcpyAsync whose time was computed by the fabric model). Returns
    /// its completion handle.
    pub fn enqueue_busy(&self, h: &SimHandle, label: &'static str, duration: SimDuration) -> LaunchHandle {
        let _ = label;
        let now = h.now();
        let mut st = self.inner.state.lock();
        let start = now.max(st.busy_until);
        let end = start + duration;
        st.busy_until = end;
        let done = Event::new();
        st.tail_done = done.clone();
        drop(st);
        {
            let done = done.clone();
            h.schedule_at(end, move |h| done.set(h));
        }
        LaunchHandle { done, start, end, span: SpanId::NONE }
    }

    /// `cudaStreamSynchronize`: block the calling host process until all
    /// enqueued work completes, then pay the fixed synchronization cost.
    pub fn synchronize(&self, ctx: &mut Ctx) {
        loop {
            let tail = self.inner.state.lock().tail_done.clone();
            ctx.wait(&tail);
            // New work may have been enqueued while we waited (by another
            // host thread); re-check until the tail is stable and done.
            let stable = {
                let st = self.inner.state.lock();
                st.tail_done.is_set()
            };
            if stable {
                break;
            }
        }
        let sync = ctx.jitter_us(
            self.inner.cost.stream_sync_us,
            self.inner.cost.stream_sync_jitter_us,
        );
        let t0 = ctx.now();
        ctx.advance(sync);
        ctx.handle().trace().record_attr(
            "stream_sync",
            t0,
            ctx.now(),
            self.inner.obs.rank(),
            None,
            SpanId::NONE,
        );
        self.inner.obs.count_stream_sync();
    }

    /// True when no device work is pending at the current instant.
    pub fn is_idle(&self, h: &SimHandle) -> bool {
        let st = self.inner.state.lock();
        st.busy_until <= h.now() && st.tail_done.is_set()
    }

    /// The instant the device becomes free given work enqueued so far.
    pub fn busy_until(&self) -> SimTime {
        self.inner.state.lock().busy_until
    }

    /// Name of the owning GPU (diagnostics).
    pub fn gpu_name(&self) -> &str {
        &self.inner.gpu_name
    }
}

impl std::fmt::Debug for Stream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stream")
            .field("gpu", &self.inner.gpu_name)
            .field("busy_until", &self.inner.state.lock().busy_until)
            .finish()
    }
}
