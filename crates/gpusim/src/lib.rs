//! # parcomm-gpu — the simulated GPU substrate
//!
//! A software model of the CUDA execution environment the paper's system
//! runs on: devices, global/pinned memory, FIFO streams,
//! `cudaStreamSynchronize`, kernel launches with a calibrated cost model,
//! and CUDA-IPC peer mappings. See `DESIGN.md` §2 for the
//! hardware-substitution rationale and the calibration anchors.
//!
//! The model is *functional + timed*: kernel bodies really read and write
//! simulated buffers (so numerics are exact), while the cost model places
//! every action on the virtual timeline (so the paper's latency/overlap
//! shapes are reproduced).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cost;
mod device;
mod faults;
mod kernel;
mod mem;
mod obs;
mod stream;

pub use cost::{AggLevel, CostModel};
pub use device::{Gpu, GpuId, IpcError, IpcMappedBuffer};
pub use faults::EmissionFaultConfig;
pub use kernel::{DeviceCtx, KernelSpec, LaunchHandle};
pub use mem::{Buffer, BufferId, Location, MemSpace, Unit};
pub use stream::Stream;
