//! The GPU device object: memory allocation, stream creation, and CUDA-IPC
//! style peer mappings.

use std::sync::Arc;

use parcomm_sim::{Mutex, SimHandle};

use parcomm_obs::MetricsRegistry;

use crate::cost::CostModel;
use crate::faults::{EmissionFaultConfig, EmissionFaults};
use crate::mem::{Buffer, Location, MemSpace, Unit};
use crate::obs::GpuObs;
use crate::stream::Stream;

/// Identity of a GPU in the cluster.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct GpuId {
    /// Node (host) index.
    pub node: u16,
    /// GPU index on that node.
    pub index: u8,
}

impl GpuId {
    /// The fabric location of this GPU.
    pub fn location(self) -> Location {
        Location { node: self.node, unit: Unit::Gpu(self.index) }
    }
}

impl std::fmt::Display for GpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu{}.{}", self.node, self.index)
    }
}

struct GpuInner {
    id: GpuId,
    cost: CostModel,
    handle: SimHandle,
    /// Armed emission fault schedule, shared with every stream of this GPU.
    /// `None` (default) keeps the fault branch dormant.
    emission_faults: Arc<Mutex<Option<EmissionFaults>>>,
    /// Armed symmetric-heap signal fault schedule, independent of the
    /// notification-flag schedule above.
    shmem_faults: Arc<Mutex<Option<EmissionFaults>>>,
    /// Observability state (rank attribution + metrics), shared with every
    /// stream of this GPU. Inert until armed.
    obs: Arc<GpuObs>,
}

/// A simulated GPU (one Hopper die of a GH200 superchip).
#[derive(Clone)]
pub struct Gpu {
    inner: Arc<GpuInner>,
}

/// Error opening an IPC mapping.
#[derive(Debug, PartialEq, Eq)]
pub enum IpcError {
    /// IPC handles only work between GPUs on the same node.
    CrossNode,
    /// The buffer is not in GPU global memory.
    NotDeviceMemory,
}

impl std::fmt::Display for IpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpcError::CrossNode => write!(f, "cuIpcOpenMemHandle: peer GPU is on a different node"),
            IpcError::NotDeviceMemory => write!(f, "cuIpcGetMemHandle: buffer is not device memory"),
        }
    }
}

impl std::error::Error for IpcError {}

/// A peer GPU buffer mapped into this GPU's address space via CUDA IPC
/// (`cuIpcOpenMemHandle`), as used by the Kernel Copy path (paper §IV-A4).
/// Kernel bodies can store directly through it; the NVLink transfer time is
/// modeled by the caller via the fabric.
#[derive(Clone, Debug)]
pub struct IpcMappedBuffer {
    /// The peer buffer this mapping aliases.
    pub buffer: Buffer,
    /// The GPU that opened the mapping.
    pub opened_by: GpuId,
}

impl Gpu {
    /// Create a GPU with the given identity and cost model.
    pub fn new(id: GpuId, cost: CostModel, handle: SimHandle) -> Self {
        Gpu {
            inner: Arc::new(GpuInner {
                id,
                cost,
                handle,
                emission_faults: Arc::new(Mutex::new(None)),
                shmem_faults: Arc::new(Mutex::new(None)),
                obs: Arc::new(GpuObs::default()),
            }),
        }
    }

    /// Attribute this GPU's trace spans (kernels, stream syncs, and the
    /// notifications chained to them) to an MPI rank. Applies to existing
    /// and future streams; spans recorded earlier stay unattributed.
    pub fn set_rank(&self, rank: u32) {
        self.inner.obs.set_rank(rank);
    }

    /// Attach metrics instruments (`gpu.kernels`, `gpu.emissions`,
    /// `gpu.stream_syncs`) to the given registry. Counts from every GPU
    /// attached to the same registry aggregate into the same instruments.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        self.inner.obs.attach(registry);
    }

    /// Arm a deterministic emission fault schedule on this GPU: every N-th
    /// kernel emission (device flag write) is delayed or lost across all of
    /// the device's streams (existing and future). See [`EmissionFaultConfig`].
    pub fn arm_emission_faults(&self, cfg: EmissionFaultConfig) {
        *self.inner.emission_faults.lock() = Some(EmissionFaults::new(cfg));
    }

    /// Arm a deterministic fault schedule for this GPU's *symmetric-heap*
    /// signal emissions (the shmem one-sided path): every N-th shmem
    /// put/signal is delayed or lost across all streams. Independent of
    /// [`arm_emission_faults`](Self::arm_emission_faults), so chaos
    /// campaigns can target one copy mechanism without perturbing the other.
    pub fn arm_shmem_signal_faults(&self, cfg: EmissionFaultConfig) {
        *self.inner.shmem_faults.lock() = Some(EmissionFaults::new(cfg));
    }

    /// This GPU's identity.
    pub fn id(&self) -> GpuId {
        self.inner.id
    }

    /// The device's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.inner.cost
    }

    /// The simulation handle this device schedules on.
    pub fn sim(&self) -> &SimHandle {
        &self.inner.handle
    }

    /// Allocate GPU global (HBM) memory.
    pub fn alloc_global(&self, len: usize) -> Buffer {
        Buffer::alloc(
            MemSpace::Device { node: self.inner.id.node, gpu: self.inner.id.index },
            len,
        )
    }

    /// Allocate page-locked host memory accessible by this device over
    /// NVLink-C2C (`cudaMallocHost`).
    pub fn alloc_pinned_host(&self, len: usize) -> Buffer {
        Buffer::alloc(MemSpace::PinnedHost { node: self.inner.id.node }, len)
    }

    /// Create a new stream on this device.
    pub fn create_stream(&self) -> Stream {
        Stream::new(
            self.inner.cost.clone(),
            self.inner.handle.clone(),
            self.inner.id.to_string(),
            self.inner.emission_faults.clone(),
            self.inner.shmem_faults.clone(),
            self.inner.obs.clone(),
        )
    }

    /// Open a CUDA-IPC mapping of a peer GPU's buffer. Only valid for
    /// device-memory buffers on the *same node* (the NVLink domain); this is
    /// the substrate for `ucp_rkey_ptr` in the modified IPC transport.
    pub fn ipc_open(&self, peer: &Buffer) -> Result<IpcMappedBuffer, IpcError> {
        match peer.space() {
            MemSpace::Device { node, .. } if node == self.inner.id.node => {
                Ok(IpcMappedBuffer { buffer: peer.clone(), opened_by: self.inner.id })
            }
            MemSpace::Device { .. } => Err(IpcError::CrossNode),
            _ => Err(IpcError::NotDeviceMemory),
        }
    }
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu").field("id", &self.inner.id).finish()
    }
}
