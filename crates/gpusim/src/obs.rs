//! Per-GPU observability state: rank attribution for span recording plus
//! optional metrics instruments.
//!
//! One [`GpuObs`] is shared between a [`crate::Gpu`] and every stream it
//! creates (mirroring how the emission fault schedule is shared). Until
//! [`crate::Gpu::set_rank`] / [`crate::Gpu::attach_metrics`] are called the
//! state is inert: spans record unattributed exactly as before, and the
//! metrics branch is a single `Option` check.

use parcomm_obs::{Counter, MetricsRegistry};
use parcomm_sim::Mutex;

/// Metrics instruments for one GPU (shared across its streams).
#[derive(Clone)]
pub(crate) struct GpuInstruments {
    /// Kernels launched.
    pub kernels: Counter,
    /// Timed device-side emissions scheduled (flag writes, copy notifies).
    pub emissions: Counter,
    /// `cudaStreamSynchronize` calls completed.
    pub stream_syncs: Counter,
}

/// Shared observability state of one GPU.
#[derive(Default)]
pub(crate) struct GpuObs {
    rank: Mutex<Option<u32>>,
    instruments: Mutex<Option<GpuInstruments>>,
}

impl GpuObs {
    /// The MPI rank this GPU is attributed to, once known.
    pub(crate) fn rank(&self) -> Option<u32> {
        *self.rank.lock()
    }

    pub(crate) fn set_rank(&self, rank: u32) {
        *self.rank.lock() = Some(rank);
    }

    pub(crate) fn attach(&self, registry: &MetricsRegistry) {
        *self.instruments.lock() = Some(GpuInstruments {
            kernels: registry.counter("gpu.kernels"),
            emissions: registry.counter("gpu.emissions"),
            stream_syncs: registry.counter("gpu.stream_syncs"),
        });
    }

    pub(crate) fn count_kernel(&self, emissions: u64) {
        if let Some(i) = self.instruments.lock().as_ref() {
            i.kernels.inc();
            i.emissions.add(emissions);
        }
    }

    pub(crate) fn count_stream_sync(&self) {
        if let Some(i) = self.instruments.lock().as_ref() {
            i.stream_syncs.inc();
        }
    }
}
