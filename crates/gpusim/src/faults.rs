//! Device-side fault model: delayed and lost kernel emissions.
//!
//! An *emission* is a timed device-visible side effect a kernel schedules
//! mid-window — in the partitioned runtime these are the `MPIX_Pready`
//! device flag writes the progression engine (or the kernel-copy chain)
//! observes. Injecting faults here models a GPU whose memory-system flag
//! writes land late (write-combining / ordering stalls) or never become
//! host-visible (the lost-wake hazard the GPU-triggering literature warns
//! about).
//!
//! Decisions are **counter-based**, not randomized: every N-th emission on
//! the armed GPU is delayed/lost. The kernel launch order is deterministic,
//! so the same config always faults the same emissions — no RNG involved,
//! nothing perturbed when unarmed.
//!
//! A *delayed* emission is survivable: the flag lands late, downstream
//! timing shifts, numerics are untouched. A *lost* emission is unsurvivable
//! by design: the corresponding partition never arrives and the receive-side
//! watchdog surfaces a typed timeout.

/// Counter-based emission fault schedule. `0` disables a class.
#[derive(Debug, Clone, PartialEq)]
pub struct EmissionFaultConfig {
    /// Delay every N-th emission (0 = never).
    pub delay_every: u64,
    /// How late a delayed emission lands (µs).
    pub delay_us: f64,
    /// Lose every N-th emission entirely (0 = never).
    pub lose_every: u64,
}

impl Default for EmissionFaultConfig {
    fn default() -> Self {
        EmissionFaultConfig { delay_every: 0, delay_us: 25.0, lose_every: 0 }
    }
}

/// What happens to one emission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum EmissionFate {
    /// Scheduled at its natural offset.
    Normal,
    /// Scheduled late by the carried extra microseconds.
    Delayed(f64),
    /// Never scheduled.
    Lost,
}

/// Armed per-GPU fault state.
#[derive(Debug)]
pub(crate) struct EmissionFaults {
    cfg: EmissionFaultConfig,
    /// Emissions classified so far on this GPU (across all its streams).
    counter: u64,
}

impl EmissionFaults {
    pub(crate) fn new(cfg: EmissionFaultConfig) -> Self {
        EmissionFaults { cfg, counter: 0 }
    }

    /// Classify the next emission. Lose takes precedence over delay when
    /// both divide the counter.
    pub(crate) fn classify(&mut self) -> EmissionFate {
        self.counter += 1;
        if self.cfg.lose_every > 0 && self.counter.is_multiple_of(self.cfg.lose_every) {
            return EmissionFate::Lost;
        }
        if self.cfg.delay_every > 0 && self.counter.is_multiple_of(self.cfg.delay_every) {
            return EmissionFate::Delayed(self.cfg.delay_us);
        }
        EmissionFate::Normal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_schedule_is_deterministic() {
        let cfg = EmissionFaultConfig { delay_every: 3, delay_us: 10.0, lose_every: 4 };
        let fates = |cfg: &EmissionFaultConfig| {
            let mut f = EmissionFaults::new(cfg.clone());
            (0..12).map(|_| f.classify()).collect::<Vec<_>>()
        };
        let a = fates(&cfg);
        assert_eq!(a, fates(&cfg));
        // counter 3, 6, 9 delayed; 4, 8, 12 lost; 12 not reached twice.
        assert_eq!(a[2], EmissionFate::Delayed(10.0));
        assert_eq!(a[3], EmissionFate::Lost);
        assert_eq!(a[11], EmissionFate::Lost, "lose wins when both divide");
    }
}
