//! Integration tests for the GPU model: stream FIFO semantics, kernel
//! timing, synchronize cost, device-context emissions, and IPC mappings.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_gpu::{AggLevel, Buffer, CostModel, Gpu, GpuId, IpcError, KernelSpec, MemSpace};
use parcomm_sim::{Event, SimConfig, SimDuration, Simulation};

fn test_gpu(sim: &Simulation) -> Gpu {
    Gpu::new(GpuId { node: 0, index: 0 }, CostModel::default(), sim.handle())
}

#[test]
fn kernel_runs_and_completes() {
    let mut sim = Simulation::new(SimConfig::default());
    let gpu = test_gpu(&sim);
    sim.spawn("host", move |ctx| {
        let stream = gpu.create_stream();
        let launch = stream.launch(ctx, KernelSpec::vector_add(4, 256), |_d| {});
        assert!(!launch.done.is_set());
        ctx.wait(&launch.done);
        assert_eq!(ctx.now(), launch.end);
        assert!(launch.duration() > SimDuration::ZERO);
    });
    sim.run().unwrap();
}

#[test]
fn kernels_on_one_stream_are_fifo() {
    let mut sim = Simulation::new(SimConfig::default());
    let gpu = test_gpu(&sim);
    sim.spawn("host", move |ctx| {
        let stream = gpu.create_stream();
        let a = stream.launch(ctx, KernelSpec::vector_add(1024, 1024), |_| {});
        let b = stream.launch(ctx, KernelSpec::vector_add(1, 32), |_| {});
        // b was enqueued while a still runs: it must start when a ends.
        assert_eq!(b.start, a.end, "FIFO stream must serialize kernels");
        ctx.wait(&b.done);
    });
    sim.run().unwrap();
}

#[test]
fn kernel_body_writes_buffers_functionally() {
    let mut sim = Simulation::new(SimConfig::default());
    let gpu = test_gpu(&sim);
    sim.spawn("host", move |ctx| {
        let a = gpu.alloc_global(8 * 16);
        let b = gpu.alloc_global(8 * 16);
        let c = gpu.alloc_global(8 * 16);
        a.write_f64_slice(0, &(0..16).map(|i| i as f64).collect::<Vec<_>>());
        b.write_f64_slice(0, &(0..16).map(|i| (i * 10) as f64).collect::<Vec<_>>());
        let (a2, b2, c2) = (a.clone(), b.clone(), c.clone());
        let stream = gpu.create_stream();
        let launch = stream.launch(ctx, KernelSpec::vector_add(1, 16), move |_d| {
            let av = a2.read_f64_slice(0, 16);
            let bv = b2.read_f64_slice(0, 16);
            let cv: Vec<f64> = av.iter().zip(&bv).map(|(x, y)| x + y).collect();
            c2.write_f64_slice(0, &cv);
        });
        ctx.wait(&launch.done);
        let cv = c.read_f64_slice(0, 16);
        assert_eq!(cv[3], 33.0);
        assert_eq!(cv[15], 165.0);
    });
    sim.run().unwrap();
}

#[test]
fn stream_synchronize_costs_fixed_time_when_idle() {
    let mut sim = Simulation::new(SimConfig::default());
    let gpu = test_gpu(&sim);
    sim.spawn("host", move |ctx| {
        let stream = gpu.create_stream();
        let t0 = ctx.now();
        stream.synchronize(ctx);
        let cost = ctx.now().since(t0).as_micros_f64();
        // 7.8 ± 0.1 µs (Fig. 2): jittered but near the constant.
        assert!((7.0..9.0).contains(&cost), "idle sync cost {cost}");
    });
    sim.run().unwrap();
}

#[test]
fn stream_synchronize_waits_for_kernel() {
    let mut sim = Simulation::new(SimConfig::default());
    let gpu = test_gpu(&sim);
    sim.spawn("host", move |ctx| {
        let stream = gpu.create_stream();
        let launch = stream.launch(ctx, KernelSpec::vector_add(128 * 1024, 1024), |_| {});
        stream.synchronize(ctx);
        assert!(ctx.now() >= launch.end);
        // Fig. 2 anchor: 128K-grid vector add ≈ 950-1000 µs of device time.
        let dur = launch.duration().as_micros_f64();
        assert!((900.0..1100.0).contains(&dur), "kernel duration {dur}");
        // Sync overhead on top of kernel end should be ≈ 7.8 µs.
        let tail = ctx.now().since(launch.end).as_micros_f64();
        assert!((7.0..9.0).contains(&tail), "sync tail {tail}");
    });
    sim.run().unwrap();
}

#[test]
fn device_ctx_emissions_fire_within_window() {
    let mut sim = Simulation::new(SimConfig::default());
    let gpu = test_gpu(&sim);
    let seen = Arc::new(Mutex::new(Vec::new()));
    let seen2 = seen.clone();
    sim.spawn("host", move |ctx| {
        let stream = gpu.create_stream();
        let flag = Event::new();
        let flag2 = flag.clone();
        let seen3 = seen2.clone();
        let launch = stream.launch(ctx, KernelSpec::vector_add(1, 64), move |d| {
            let compute = d.compute_duration();
            let writes = d.cost().pready_cost_us(AggLevel::Block, 64);
            let end = d.extend(SimDuration::from_micros_f64(writes));
            let _ = compute;
            let seen4 = seen3.clone();
            d.at_offset(end, move |h| {
                seen4.lock().push(h.now());
                flag2.set(h);
            });
        });
        ctx.wait(&flag);
        assert_eq!(ctx.now(), launch.end, "emission at kernel end");
        ctx.wait(&launch.done);
    });
    sim.run().unwrap();
    assert_eq!(seen.lock().len(), 1);
}

#[test]
fn extended_kernels_occupy_the_stream_longer() {
    let mut sim = Simulation::new(SimConfig::default());
    let gpu = test_gpu(&sim);
    sim.spawn("host", move |ctx| {
        let stream = gpu.create_stream();
        let plain = stream.launch(ctx, KernelSpec::vector_add(1, 1024), |_| {});
        ctx.wait(&plain.done);
        let extended = stream.launch(ctx, KernelSpec::vector_add(1, 1024), |d| {
            d.extend(SimDuration::from_micros(50));
        });
        ctx.wait(&extended.done);
        let delta = extended.duration().as_micros_f64() - plain.duration().as_micros_f64();
        assert!((49.0..51.0).contains(&delta), "extension delta {delta}");
    });
    sim.run().unwrap();
}

#[test]
fn enqueue_busy_serializes_with_kernels() {
    let mut sim = Simulation::new(SimConfig::default());
    let gpu = test_gpu(&sim);
    sim.spawn("host", move |ctx| {
        let stream = gpu.create_stream();
        let k = stream.launch(ctx, KernelSpec::vector_add(512, 1024), |_| {});
        let cpy = stream.enqueue_busy(&ctx.handle(), "memcpy", SimDuration::from_micros(12));
        assert_eq!(cpy.start, k.end);
        assert_eq!(cpy.duration(), SimDuration::from_micros(12));
        ctx.wait(&cpy.done);
    });
    sim.run().unwrap();
}

#[test]
fn ipc_open_same_node_ok_cross_node_fails() {
    let mut sim = Simulation::new(SimConfig::default());
    let h = sim.handle();
    let gpu0 = Gpu::new(GpuId { node: 0, index: 0 }, CostModel::default(), h.clone());
    let gpu1 = Gpu::new(GpuId { node: 0, index: 1 }, CostModel::default(), h.clone());
    let gpu_remote = Gpu::new(GpuId { node: 1, index: 0 }, CostModel::default(), h.clone());
    sim.spawn("host", move |_ctx| {
        let peer_buf = gpu1.alloc_global(64);
        let mapped = gpu0.ipc_open(&peer_buf).expect("same-node IPC must work");
        mapped.buffer.write_f64(0, 4.25);
        assert_eq!(peer_buf.read_f64(0), 4.25, "mapping aliases the peer buffer");

        let remote_buf = gpu_remote.alloc_global(64);
        assert_eq!(gpu0.ipc_open(&remote_buf).unwrap_err(), IpcError::CrossNode);

        let host_buf = Buffer::alloc(MemSpace::Host { node: 0 }, 64);
        assert_eq!(gpu0.ipc_open(&host_buf).unwrap_err(), IpcError::NotDeviceMemory);
    });
    sim.run().unwrap();
}

#[test]
fn pinned_host_memory_space() {
    let mut sim = Simulation::new(SimConfig::default());
    let gpu = test_gpu(&sim);
    sim.spawn("host", move |_ctx| {
        let flags = gpu.alloc_pinned_host(128);
        assert!(flags.space().is_pinned_host());
        assert_eq!(flags.space().node(), 0);
    });
    sim.run().unwrap();
}

#[test]
fn two_streams_run_concurrently() {
    let mut sim = Simulation::new(SimConfig::default());
    let gpu = test_gpu(&sim);
    sim.spawn("host", move |ctx| {
        let s1 = gpu.create_stream();
        let s2 = gpu.create_stream();
        let a = s1.launch(ctx, KernelSpec::vector_add(1024, 1024), |_| {});
        let b = s2.launch(ctx, KernelSpec::vector_add(1024, 1024), |_| {});
        // Independent streams: b does not wait for a (model has no
        // SM-contention serialization between streams).
        assert!(b.start < a.end, "streams must overlap");
        ctx.wait(&a.done);
        ctx.wait(&b.done);
    });
    sim.run().unwrap();
}

#[test]
fn flag_write_train_pays_base_once_per_kernel() {
    let mut sim = Simulation::new(SimConfig::default());
    let gpu = test_gpu(&sim);
    sim.spawn("host", move |ctx| {
        let stream = gpu.create_stream();
        let costs = Arc::new(Mutex::new(Vec::new()));
        let costs2 = costs.clone();
        let launch = stream.launch(ctx, KernelSpec::vector_add(1, 64), move |d| {
            // First train: a + 4b; second train in the same kernel: 4b.
            costs2.lock().push(d.flag_write_train_us(4));
            costs2.lock().push(d.flag_write_train_us(4));
            costs2.lock().push(d.flag_write_train_us(0));
        });
        ctx.wait(&launch.done);
        let cm = gpu.cost();
        let got = costs.lock().clone();
        let a = cm.host_flag_write_base_us;
        let b = cm.host_flag_write_per_us;
        assert!((got[0] - (a + 4.0 * b)).abs() < 1e-9, "first train {}", got[0]);
        assert!((got[1] - 4.0 * b).abs() < 1e-9, "second train {}", got[1]);
        assert_eq!(got[2], 0.0, "empty train is free");
    });
    sim.run().unwrap();
}

#[test]
fn flag_train_state_resets_between_kernels() {
    let mut sim = Simulation::new(SimConfig::default());
    let gpu = test_gpu(&sim);
    sim.spawn("host", move |ctx| {
        let stream = gpu.create_stream();
        let first = Arc::new(Mutex::new(0.0));
        let f2 = first.clone();
        let l1 = stream.launch(ctx, KernelSpec::vector_add(1, 32), move |d| {
            *f2.lock() = d.flag_write_train_us(1);
        });
        ctx.wait(&l1.done);
        let second = Arc::new(Mutex::new(0.0));
        let s2 = second.clone();
        let l2 = stream.launch(ctx, KernelSpec::vector_add(1, 32), move |d| {
            *s2.lock() = d.flag_write_train_us(1);
        });
        ctx.wait(&l2.done);
        assert_eq!(
            *first.lock(),
            *second.lock(),
            "each kernel pays the base drain latency afresh"
        );
    });
    sim.run().unwrap();
}

#[test]
#[should_panic(expected = "block_dim must be 1..=1024")]
fn oversized_block_rejected() {
    KernelSpec::new("bad", 1, 2048);
}
