//! Property-based tests over the core invariants: partition/transport
//! arithmetic, buffer views, schedule structure, and end-to-end exactly-once
//! delivery for arbitrary channel shapes and ready orders.
//!
//! Runs on the in-tree `parcomm-testkit` property runner (seeded generation
//! plus shrinking); reproduce a failure by re-running with
//! `PARCOMM_PROP_SEED=<seed>`.

use parcomm::coll::{Schedule, StepOp};
use parcomm::core::transport_of_user;
use parcomm::gpu::{Buffer, MemSpace};
use parcomm::mpi::chunk_range;
use parcomm::prelude::*;
use parcomm::sim::SimDuration;
use parcomm_testkit::prop::{check, PropConfig, TestResult};

fn cfg() -> PropConfig {
    PropConfig::with_cases(64)
}

#[test]
fn chunk_range_is_exact_partition() {
    check(
        &cfg(),
        "chunk_range_is_exact_partition",
        |rng| (rng.uniform_range(0, 10_000) as usize, rng.uniform_range(1, 64) as usize),
        |&(n, parts)| {
            if parts == 0 {
                return TestResult::Discard;
            }
            let mut next = 0usize;
            let mut total = 0usize;
            for i in 0..parts {
                let (start, len) = chunk_range(n, parts, i);
                assert_eq!(start, next, "chunk {i} not contiguous");
                next = start + len;
                total += len;
            }
            assert_eq!(total, n);
            TestResult::Pass
        },
    );
}

#[test]
fn chunk_sizes_differ_by_at_most_one() {
    check(
        &cfg(),
        "chunk_sizes_differ_by_at_most_one",
        |rng| (rng.uniform_range(1, 10_000) as usize, rng.uniform_range(1, 64) as usize),
        |&(n, parts)| {
            if n == 0 || parts == 0 {
                return TestResult::Discard;
            }
            let lens: Vec<usize> = (0..parts).map(|i| chunk_range(n, parts, i).1).collect();
            let min = *lens.iter().min().expect("non-empty");
            let max = *lens.iter().max().expect("non-empty");
            assert!(max - min <= 1, "n={n} parts={parts}: {min}..{max}");
            TestResult::Pass
        },
    );
}

#[test]
fn transport_of_user_is_chunk_range_inverse() {
    check(
        &cfg(),
        "transport_of_user_is_chunk_range_inverse",
        |rng| {
            (
                rng.uniform_range(1, 4096) as usize,
                rng.uniform_range(1, 64) as usize,
                rng.uniform_range(0, 4096) as usize,
            )
        },
        |&(users, transports, probe)| {
            if users == 0 || transports == 0 || transports > users {
                return TestResult::Discard;
            }
            let u = probe % users;
            let k = transport_of_user(users, transports, u);
            let (start, len) = chunk_range(users, transports, k);
            assert!(
                u >= start && u < start + len,
                "u={u} mapped to k={k} [{start},{})",
                start + len
            );
            TestResult::Pass
        },
    );
}

#[test]
fn buffer_f64_roundtrip() {
    check(
        &cfg(),
        "buffer_f64_roundtrip",
        |rng| {
            let n = rng.uniform_range(1, 128) as usize;
            let mut values = vec![0.0f64; n];
            rng.fill_uniform_f64(&mut values, -1e12, 1e12);
            (values, rng.uniform_range(0, 64) as usize)
        },
        |(values, off): &(Vec<f64>, usize)| {
            if values.is_empty() {
                return TestResult::Discard;
            }
            let buf = Buffer::alloc(MemSpace::Host { node: 0 }, (values.len() + 64) * 8);
            buf.write_f64_slice(off * 8, values);
            assert_eq!(&buf.read_f64_slice(off * 8, values.len()), values);
            TestResult::Pass
        },
    );
}

#[test]
fn buffer_accumulate_is_elementwise_add() {
    check(
        &cfg(),
        "buffer_accumulate_is_elementwise_add",
        |rng| {
            let n = rng.uniform_range(1, 64) as usize;
            let mut a = vec![0.0f64; n];
            rng.fill_uniform_f64(&mut a, -1e6, 1e6);
            let b_seed = -1e6 + 2e6 * rng.uniform();
            (a, b_seed)
        },
        |(a, b_seed): &(Vec<f64>, f64)| {
            if a.is_empty() {
                return TestResult::Discard;
            }
            let n = a.len();
            let b: Vec<f64> = (0..n).map(|i| b_seed + i as f64).collect();
            let ba = Buffer::alloc(MemSpace::Host { node: 0 }, n * 8);
            let bb = Buffer::alloc(MemSpace::Host { node: 0 }, n * 8);
            ba.write_f64_slice(0, a);
            bb.write_f64_slice(0, &b);
            ba.accumulate_f64(0, &bb, 0, n);
            let out = ba.read_f64_slice(0, n);
            for ((o, x), y) in out.iter().zip(a).zip(&b) {
                assert_eq!(*o, x + y);
            }
            TestResult::Pass
        },
    );
}

#[test]
fn sim_duration_arithmetic_is_consistent() {
    check(
        &cfg(),
        "sim_duration_arithmetic_is_consistent",
        |rng| (rng.uniform_range(0, u64::MAX / 4), rng.uniform_range(0, u64::MAX / 4)),
        |&(a, b)| {
            let (da, db) = (SimDuration::from_nanos(a), SimDuration::from_nanos(b));
            assert_eq!(da + db, db + da);
            assert_eq!((da + db) - db, da);
            assert_eq!(
                da.saturating_sub(db) + db.saturating_sub(da),
                SimDuration::from_nanos(a.abs_diff(b))
            );
            TestResult::Pass
        },
    );
}

#[test]
fn ring_allreduce_schedule_invariants() {
    check(
        &cfg(),
        "ring_allreduce_schedule_invariants",
        |rng| (rng.uniform_range(1, 24) as usize, rng.uniform_range(0, 24) as usize),
        |&(p, r_probe)| {
            if p == 0 {
                return TestResult::Discard;
            }
            let r = r_probe % p;
            let s = Schedule::ring_allreduce(r, p);
            if p == 1 {
                assert!(s.is_empty());
                return TestResult::Pass;
            }
            assert_eq!(s.len(), 2 * (p - 1));
            // Reduce-scatter ops first, then allgather NOPs.
            for (i, step) in s.steps.iter().enumerate() {
                assert_eq!(step.op == StepOp::Sum, i < p - 1);
                assert_eq!(step.incoming, vec![(r + p - 1) % p]);
                assert_eq!(step.outgoing, vec![(r + 1) % p]);
                assert!(step.ready_offset < p && step.arrived_offset < p);
            }
            // What r sends at step i arrives at r+1 at step i.
            let next = Schedule::ring_allreduce((r + 1) % p, p);
            for i in 0..s.len() {
                assert_eq!(s.steps[i].ready_offset, next.steps[i].arrived_offset);
            }
            TestResult::Pass
        },
    );
}

#[test]
fn tree_bcast_schedule_covers_all_ranks() {
    check(
        &cfg(),
        "tree_bcast_schedule_covers_all_ranks",
        |rng| (rng.uniform_range(1, 20) as usize, rng.uniform_range(0, 20) as usize),
        |&(p, root_probe)| {
            if p == 0 {
                return TestResult::Discard;
            }
            let root = root_probe % p;
            let schedules: Vec<Schedule> = (0..p).map(|r| Schedule::tree_bcast(r, p, root)).collect();
            let mut have: Vec<bool> = (0..p).map(|r| r == root).collect();
            for i in 0..schedules[0].len() {
                let snapshot = have.clone();
                for r in 0..p {
                    for &dst in &schedules[r].steps[i].outgoing {
                        assert!(snapshot[r], "p={p} root={root}: rank {r} sends without data");
                        have[dst] = true;
                    }
                }
            }
            assert!(have.iter().all(|&x| x));
            TestResult::Pass
        },
    );
}

// End-to-end simulations are heavier: fewer cases.

#[test]
fn partitioned_delivery_is_exactly_once() {
    check(
        &PropConfig::with_cases(12),
        "partitioned_delivery_is_exactly_once",
        |rng| {
            (
                rng.uniform_range(1, 24) as usize,
                rng.uniform_range(1, 8) as usize,
                rng.uniform_range(1, 24) as usize,
                rng.uniform_range(0, 1_000),
            )
        },
        |&(partitions, part_kib, transports_probe, shuffle_seed)| {
            if partitions == 0 || part_kib == 0 || transports_probe == 0 {
                return TestResult::Discard;
            }
            let transports = 1 + transports_probe % partitions;
            let bytes = partitions * part_kib * 64;
            // Random but deterministic ready order.
            let mut order: Vec<usize> = (0..partitions).collect();
            let mut state = shuffle_seed.wrapping_add(1);
            for i in (1..order.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                order.swap(i, (state >> 33) as usize % (i + 1));
            }

            let mut sim = Simulation::with_seed(shuffle_seed);
            let world = MpiWorld::gh200(&sim, 1);
            world.run_ranks(&mut sim, move |ctx, rank| {
                let buf = rank.gpu().alloc_global(bytes);
                match rank.rank() {
                    0 => {
                        for u in 0..partitions {
                            let (start, len) = chunk_range(bytes, partitions, u);
                            let _ = len;
                            buf.write_f64(start, (u + 1) as f64);
                        }
                        let sreq = psend_init(ctx, rank, 1, 80, &buf, partitions).expect("init");
                        sreq.set_transport_partitions(transports).expect("set_transport_partitions");
                        sreq.start(ctx).expect("start");
                        sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                        for &u in &order {
                            sreq.pready(ctx, u).expect("pready");
                        }
                        sreq.wait(ctx).expect("wait");
                    }
                    1 => {
                        let rreq = precv_init(ctx, rank, 0, 80, &buf, partitions).expect("init");
                        rreq.start(ctx).expect("start");
                        rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                        rreq.wait(ctx).expect("wait");
                        for u in 0..partitions {
                            assert!(rreq.parrived(u), "partition {u} not flagged");
                            let (start, _) = chunk_range(bytes, partitions, u);
                            assert_eq!(buf.read_f64(start), (u + 1) as f64, "partition {u} payload");
                        }
                    }
                    _ => {}
                }
            });
            sim.run().unwrap();
            TestResult::Pass
        },
    );
}

#[test]
fn pallreduce_matches_scalar_sum() {
    check(
        &PropConfig::with_cases(12),
        "pallreduce_matches_scalar_sum",
        |rng| {
            (
                rng.uniform_range(1, 6) as usize,
                rng.uniform_range(1, 32) as usize,
                rng.uniform_range(0, 1_000),
            )
        },
        |&(partitions, elems_per_chunk, seed)| {
            if partitions == 0 || elems_per_chunk == 0 {
                return TestResult::Discard;
            }
            let mut sim = Simulation::with_seed(seed);
            let world = MpiWorld::gh200(&sim, 1);
            let p = world.size();
            let n = partitions * p * elems_per_chunk;
            world.run_ranks(&mut sim, move |ctx, rank| {
                let buf = rank.gpu().alloc_global(n * 8);
                let vals: Vec<f64> = (0..n)
                    .map(|i| ((rank.rank() * 7919 + i * 13) % 101) as f64 - 50.0)
                    .collect();
                buf.write_f64_slice(0, &vals);
                let stream = rank.gpu().create_stream();
                let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 81).expect("init");
                coll.start(ctx).expect("start");
                coll.pbuf_prepare(ctx).expect("pbuf_prepare");
                for u in 0..partitions {
                    coll.pready(ctx, u).expect("pready");
                }
                coll.wait(ctx).expect("wait");
                let out = buf.read_f64_slice(0, n);
                for (i, v) in out.iter().enumerate() {
                    let expect: f64 = (0..rank.size())
                        .map(|r| ((r * 7919 + i * 13) % 101) as f64 - 50.0)
                        .sum();
                    assert!((v - expect).abs() < 1e-9, "elem {i}: {v} != {expect}");
                }
            });
            sim.run().unwrap();
            TestResult::Pass
        },
    );
}
