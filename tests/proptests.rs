//! Property-based tests over the core invariants: partition/transport
//! arithmetic, buffer views, schedule structure, and end-to-end exactly-once
//! delivery for arbitrary channel shapes and ready orders.

use proptest::prelude::*;

use parcomm::coll::{Schedule, StepOp};
use parcomm::core::transport_of_user;
use parcomm::gpu::{Buffer, MemSpace};
use parcomm::mpi::chunk_range;
use parcomm::prelude::*;
use parcomm::sim::SimDuration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunk_range_is_exact_partition(n in 0usize..10_000, parts in 1usize..64) {
        let mut next = 0usize;
        let mut total = 0usize;
        for i in 0..parts {
            let (start, len) = chunk_range(n, parts, i);
            prop_assert_eq!(start, next);
            next = start + len;
            total += len;
        }
        prop_assert_eq!(total, n);
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one(n in 1usize..10_000, parts in 1usize..64) {
        let lens: Vec<usize> = (0..parts).map(|i| chunk_range(n, parts, i).1).collect();
        let min = *lens.iter().min().expect("non-empty");
        let max = *lens.iter().max().expect("non-empty");
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn transport_of_user_is_chunk_range_inverse(
        users in 1usize..4096,
        transports in 1usize..64,
        probe in 0usize..4096,
    ) {
        prop_assume!(transports <= users);
        let u = probe % users;
        let k = transport_of_user(users, transports, u);
        let (start, len) = chunk_range(users, transports, k);
        prop_assert!(u >= start && u < start + len, "u={u} mapped to k={k} [{start},{})", start+len);
    }

    #[test]
    fn buffer_f64_roundtrip(values in proptest::collection::vec(-1e12f64..1e12, 1..128), off in 0usize..64) {
        let buf = Buffer::alloc(MemSpace::Host { node: 0 }, (values.len() + 64) * 8);
        buf.write_f64_slice(off * 8, &values);
        prop_assert_eq!(buf.read_f64_slice(off * 8, values.len()), values);
    }

    #[test]
    fn buffer_accumulate_is_elementwise_add(
        a in proptest::collection::vec(-1e6f64..1e6, 1..64),
        b_seed in -1e6f64..1e6,
    ) {
        let n = a.len();
        let b: Vec<f64> = (0..n).map(|i| b_seed + i as f64).collect();
        let ba = Buffer::alloc(MemSpace::Host { node: 0 }, n * 8);
        let bb = Buffer::alloc(MemSpace::Host { node: 0 }, n * 8);
        ba.write_f64_slice(0, &a);
        bb.write_f64_slice(0, &b);
        ba.accumulate_f64(0, &bb, 0, n);
        let out = ba.read_f64_slice(0, n);
        for ((o, x), y) in out.iter().zip(&a).zip(&b) {
            prop_assert_eq!(*o, x + y);
        }
    }

    #[test]
    fn sim_duration_arithmetic_is_consistent(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (da, db) = (SimDuration::from_nanos(a), SimDuration::from_nanos(b));
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db) - db, da);
        prop_assert_eq!(da.saturating_sub(db) + db.saturating_sub(da),
            SimDuration::from_nanos(a.abs_diff(b)));
    }

    #[test]
    fn ring_allreduce_schedule_invariants(p in 1usize..24, r_probe in 0usize..24) {
        let r = r_probe % p;
        let s = Schedule::ring_allreduce(r, p);
        if p == 1 {
            prop_assert!(s.is_empty());
            return Ok(());
        }
        prop_assert_eq!(s.len(), 2 * (p - 1));
        // Reduce-scatter ops first, then allgather NOPs.
        for (i, step) in s.steps.iter().enumerate() {
            prop_assert_eq!(step.op == StepOp::Sum, i < p - 1);
            prop_assert_eq!(step.incoming.clone(), vec![(r + p - 1) % p]);
            prop_assert_eq!(step.outgoing.clone(), vec![(r + 1) % p]);
            prop_assert!(step.ready_offset < p && step.arrived_offset < p);
        }
        // What r sends at step i arrives at r+1 at step i.
        let next = Schedule::ring_allreduce((r + 1) % p, p);
        for i in 0..s.len() {
            prop_assert_eq!(s.steps[i].ready_offset, next.steps[i].arrived_offset);
        }
    }

    #[test]
    fn tree_bcast_schedule_covers_all_ranks(p in 1usize..20, root_probe in 0usize..20) {
        let root = root_probe % p;
        let schedules: Vec<Schedule> = (0..p).map(|r| Schedule::tree_bcast(r, p, root)).collect();
        let mut have: Vec<bool> = (0..p).map(|r| r == root).collect();
        for i in 0..schedules[0].len() {
            let snapshot = have.clone();
            for r in 0..p {
                for &dst in &schedules[r].steps[i].outgoing {
                    prop_assert!(snapshot[r], "p={p} root={root}: rank {r} sends without data");
                    have[dst] = true;
                }
            }
        }
        prop_assert!(have.iter().all(|&x| x));
    }
}

proptest! {
    // End-to-end simulations are heavier: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn partitioned_delivery_is_exactly_once(
        partitions in 1usize..24,
        part_kib in 1usize..8,
        transports_probe in 1usize..24,
        shuffle_seed in 0u64..1_000,
    ) {
        let transports = 1 + transports_probe % partitions;
        let bytes = partitions * part_kib * 64;
        // Random but deterministic ready order.
        let mut order: Vec<usize> = (0..partitions).collect();
        let mut state = shuffle_seed.wrapping_add(1);
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }

        let mut sim = Simulation::with_seed(shuffle_seed);
        let world = MpiWorld::gh200(&sim, 1);
        world.run_ranks(&mut sim, move |ctx, rank| {
            let buf = rank.gpu().alloc_global(bytes);
            match rank.rank() {
                0 => {
                    for u in 0..partitions {
                        let (start, len) = chunk_range(bytes, partitions, u);
                        let _ = len;
                        buf.write_f64(start, (u + 1) as f64);
                    }
                    let sreq = psend_init(ctx, rank, 1, 80, &buf, partitions);
                    sreq.set_transport_partitions(transports);
                    sreq.start(ctx);
                    sreq.pbuf_prepare(ctx);
                    for &u in &order {
                        sreq.pready(ctx, u);
                    }
                    sreq.wait(ctx);
                }
                1 => {
                    let rreq = precv_init(ctx, rank, 0, 80, &buf, partitions);
                    rreq.start(ctx);
                    rreq.pbuf_prepare(ctx);
                    rreq.wait(ctx);
                    for u in 0..partitions {
                        assert!(rreq.parrived(u), "partition {u} not flagged");
                        let (start, _) = chunk_range(bytes, partitions, u);
                        assert_eq!(buf.read_f64(start), (u + 1) as f64, "partition {u} payload");
                    }
                }
                _ => {}
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn pallreduce_matches_scalar_sum(
        partitions in 1usize..6,
        elems_per_chunk in 1usize..32,
        seed in 0u64..1_000,
    ) {
        let mut sim = Simulation::with_seed(seed);
        let world = MpiWorld::gh200(&sim, 1);
        let p = world.size();
        let n = partitions * p * elems_per_chunk;
        world.run_ranks(&mut sim, move |ctx, rank| {
            let buf = rank.gpu().alloc_global(n * 8);
            let vals: Vec<f64> = (0..n)
                .map(|i| ((rank.rank() * 7919 + i * 13) % 101) as f64 - 50.0)
                .collect();
            buf.write_f64_slice(0, &vals);
            let stream = rank.gpu().create_stream();
            let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 81);
            coll.start(ctx);
            coll.pbuf_prepare(ctx);
            for u in 0..partitions {
                coll.pready(ctx, u);
            }
            coll.wait(ctx);
            let out = buf.read_f64_slice(0, n);
            for (i, v) in out.iter().enumerate() {
                let expect: f64 = (0..rank.size())
                    .map(|r| ((r * 7919 + i * 13) % 101) as f64 - 50.0)
                    .sum();
                assert!((v - expect).abs() < 1e-9, "elem {i}: {v} != {expect}");
            }
        });
        sim.run().unwrap();
    }
}
