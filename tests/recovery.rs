//! Recovery conformance suite — the escalation-ladder contract end to end:
//!
//! 1. **Digest neutrality** — arming recovery with zero faults reproduces
//!    the frozen pre-recovery digests bit for bit;
//! 2. **PE crash mid-epoch** — lease detection, host drain, and epoch
//!    replay carry the run to numerics bit-identical to the fault-free
//!    baseline (while recovery-off still surfaces the typed error);
//! 3. **All rails down** — a finite full-node NIC outage recovers through
//!    generation-tagged epoch replay, numerics intact;
//! 4. **Idempotent replay** — spurious `recover_epoch` calls on a live
//!    epoch are harmless: duplicate puts land under a stale generation and
//!    are discarded (a seeded property test with shrinking);
//! 5. **Quarantine + schedule repair** — the hierarchical allreduce
//!    schedule recomputed around a quarantined node still reduces
//!    correctly over the survivors, and an unroutable repair is a typed
//!    [`MpiError::Unrecoverable`], never a hang;
//! 6. **Coverage-guided search beats the grid** — at equal cell budget the
//!    guided campaign reaches strictly more fault-class × layer coverage
//!    points than the fixed seed×rate grid, with zero contract failures.

use std::collections::BTreeMap;
use std::sync::Arc;

use parcomm::coll::{Schedule, StepOp};
use parcomm::fault::coverage::{self, CoverageCampaignConfig};
use parcomm::fault::{campaign::CampaignConfig, chaos, FaultPlan};
use parcomm::mpi::MpiError;
use parcomm::net::Topology;
use parcomm::prelude::*;
use parcomm::recover::{run_allreduce_recovering, EscalationLevel};
use parcomm::sim::Mutex;
use parcomm_testkit::prop::{check, PropConfig, TestResult};

/// The frozen whole-stack digests of `crates/faultsim/tests/chaos.rs`,
/// captured before the fault subsystem (and, a fortiori, before recovery)
/// existed. A recovery-armed zero-fault run must reproduce them exactly.
const FROZEN_ALLREDUCE: &[(u64, u64)] = &[
    (0xA11CE, 0x1398043747556f40),
    (0xB0B, 0x65b7d5c9b7bbbcb8),
    (0xC0C0A, 0xc1a31d5d266c8b20),
    (0xFA017, 0x3e5fdd5171c85ddd),
];

#[test]
fn recovery_armed_zero_fault_reproduces_frozen_digests() {
    let policy = RecoverPolicy::new();
    for &(seed, want) in FROZEN_ALLREDUCE {
        let run = run_allreduce_recovering(seed, &FaultPlan::none(), 1, &policy);
        assert!(run.survived());
        assert_eq!(
            run.digest, want,
            "seed {seed:#x}: arming recovery perturbed the frozen zero-fault digest"
        );
        assert!(RecoveryReport::from_metrics(&run.metrics).quiet());
    }
    // Cross-node worlds have no frozen baseline of their own; equality with
    // the recovery-off run proves neutrality there too.
    for seed in [0xA11CE, 0xFA017] {
        let on = run_allreduce_recovering(seed, &FaultPlan::none(), 2, &policy);
        let off = chaos::run_allreduce(seed, &FaultPlan::none(), 2);
        assert_eq!(on.digest, off.digest, "seed {seed:#x}: 2-node digest drift");
    }
}

#[test]
fn pe_crash_mid_epoch_recovers_bit_identical() {
    // The crash must land inside the epoch (runs end ~479 µs and the PE's
    // queue drains in the first ~200 µs; 80 µs is mid-flight).
    let plan = FaultPlan::none().with_pe_crash(1, 80.0).with_watchdog(5_000_000.0);
    let clean = chaos::run_allreduce(0xA11CE, &FaultPlan::none(), 1);

    // Recovery off: the crash is still the typed error it always was.
    let off = chaos::run_allreduce(0xA11CE, &plan, 1);
    assert!(!off.survived(), "recovery-off behavior must be unchanged");

    // Recovery on: lease expiry, host drain, epoch replay — and the
    // reduction is bit-identical to the fault-free run.
    let run = run_allreduce_recovering(0xA11CE, &plan, 1, &RecoverPolicy::new());
    assert!(run.survived(), "PE crash must recover: {:?}", run.errors);
    assert_eq!(run.numeric, clean.numeric, "recovered numerics must match fault-free");
    let report = RecoveryReport::from_metrics(&run.metrics);
    assert!(report.lease_expired > 0, "lease detection must fire: {report:?}");
    assert!(report.host_drains > 0, "host drain must fire: {report:?}");
    assert!(report.highest_level() >= EscalationLevel::LeaseTakeover);

    // Replayable: the same (seed, plan, policy) reproduces the digest.
    let again = run_allreduce_recovering(0xA11CE, &plan, 1, &RecoverPolicy::new());
    assert_eq!(run.digest, again.digest, "recovery must stay deterministic");
}

#[test]
fn all_rails_down_recovers_by_epoch_replay() {
    // All four NICs of node 0 dark for a finite window. It opens at 600 µs
    // — after the ~400 µs channel handshake settles (an outage overlapping
    // the handshake is genuinely unrecoverable; see DESIGN.md §13) — and
    // closes inside the 20 ms stall-detection horizon.
    let mut plan = FaultPlan::none().with_watchdog(5_000_000.0);
    for nic in 0..4u8 {
        plan = plan.with_nic_outage(0, nic, 600.0, 8_000.0).expect("valid window");
    }
    let clean = chaos::run_allreduce(0xA11CE, &FaultPlan::none(), 2);
    let run = run_allreduce_recovering(0xA11CE, &plan, 2, &RecoverPolicy::new());
    assert!(run.survived(), "finite all-rails outage must recover: {:?}", run.errors);
    assert_eq!(run.numeric, clean.numeric, "replayed numerics must match fault-free");
    let report = RecoveryReport::from_metrics(&run.metrics);
    assert!(report.replays > 0, "epoch replay must have fired: {report:?}");
    assert_eq!(report.highest_level(), EscalationLevel::EpochReplay);
    let again = run_allreduce_recovering(0xA11CE, &plan, 2, &RecoverPolicy::new());
    assert_eq!(run.digest, again.digest, "recovery must stay deterministic");
}

/// Deterministic per-byte payload, distinct across partitions and offsets.
fn pattern(part: usize, i: usize) -> u8 {
    ((part * 137 + i * 11) % 251) as u8
}

/// One cross-node psend/precv epoch (rank 3 → rank 4) with `replays`
/// spurious `recover_epoch` calls injected between `pready` and `wait`.
/// Returns the receiver's reassembled bytes plus the recovery counters.
fn p2p_with_spurious_replays(
    parts: usize,
    part_bytes: usize,
    replays: usize,
) -> (Vec<u8>, u64, u64) {
    let mut sim = Simulation::with_seed(0x1D3E_4B07);
    let world = MpiWorld::gh200(&sim, 2);
    let registry = world.enable_metrics();
    let received = Arc::new(Mutex::new(Vec::new()));
    let r2 = received.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let buf = rank.gpu().alloc_global(parts * part_bytes);
        match rank.rank() {
            3 => {
                for u in 0..parts {
                    let bytes: Vec<u8> = (0..part_bytes).map(|i| pattern(u, i)).collect();
                    buf.write_bytes(u * part_bytes, &bytes);
                }
                let sreq = psend_init(ctx, rank, 4, 11, &buf, parts).expect("psend init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                for u in 0..parts {
                    sreq.pready(ctx, u).expect("pready");
                }
                for _ in 0..replays {
                    sreq.recover_epoch(ctx);
                }
                sreq.wait(ctx).expect("wait");
            }
            4 => {
                let rreq = precv_init(ctx, rank, 3, 11, &buf, parts).expect("precv init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                *r2.lock() = buf.read_bytes(0, parts * part_bytes);
            }
            _ => {}
        }
    });
    sim.run().expect("p2p sim");
    let snap = registry.snapshot();
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    let bytes = Arc::try_unwrap(received).expect("ranks done").into_inner();
    (bytes, c("mpi.recover.replays"), c("mpi.recover.stale_puts"))
}

/// Satellite 4 — property: epoch replay is idempotent. Any number of
/// spurious replays of a live epoch leaves the received payload
/// byte-identical to the expected pattern; superseded-generation
/// completions are discarded, never applied twice.
#[test]
fn spurious_epoch_replay_is_idempotent() {
    let cfg = PropConfig { cases: 10, ..PropConfig::default() };
    check(
        &cfg,
        "spurious_epoch_replay_is_idempotent",
        |rng| {
            (
                rng.uniform_range(1, 7),    // partitions
                rng.uniform_range(1, 2049), // bytes per partition
                rng.uniform_range(1, 4),    // spurious replays
            )
        },
        |&(parts, part_bytes, replays)| {
            if parts == 0 || part_bytes == 0 || replays == 0 {
                return TestResult::Discard;
            }
            let (parts, part_bytes, replays) =
                (parts as usize, part_bytes as usize, replays as usize);
            let (got, _, _) = p2p_with_spurious_replays(parts, part_bytes, replays);
            let want: Vec<u8> = (0..parts)
                .flat_map(|u| (0..part_bytes).map(move |i| pattern(u, i)))
                .collect();
            if got == want {
                TestResult::Pass
            } else {
                let at = want.iter().zip(&got).position(|(a, b)| a != b);
                TestResult::Fail(format!(
                    "replayed payload diverges at byte {at:?} \
                     (parts={parts}, part_bytes={part_bytes}, replays={replays})"
                ))
            }
        },
    );

    // A fixed instance pins the counter semantics: every spurious call is
    // a counted replay, and the superseded puts really landed stale.
    let (got, replay_count, stale) = p2p_with_spurious_replays(4, 512, 2);
    assert_eq!(got.len(), 4 * 512);
    assert_eq!(replay_count, 2, "each spurious recover_epoch is one counted replay");
    assert!(stale > 0, "old-generation completions must be discarded as stale");
}

/// Value-level schedule interpreter: executes the per-rank schedules in
/// lockstep over one f64 per chunk, staging sends before applying arrivals
/// (so a step may send and receive the same buffer slot safely).
fn interpret(scheds: &BTreeMap<usize, Schedule>, init: &BTreeMap<usize, Vec<f64>>) -> BTreeMap<usize, Vec<f64>> {
    let orig = init.clone();
    let mut bufs = init.clone();
    let steps = scheds.values().map(|s| s.len()).max().unwrap_or(0);
    for i in 0..steps {
        let mut staged: BTreeMap<usize, f64> = BTreeMap::new();
        for (&r, sched) in scheds {
            if let Some(step) = sched.steps.get(i) {
                if !step.outgoing.is_empty() {
                    let src = if step.early_stage { &orig[&r] } else { &bufs[&r] };
                    staged.insert(r, src[step.ready_offset]);
                }
            }
        }
        for (&r, sched) in scheds {
            if let Some(step) = sched.steps.get(i) {
                for src in &step.incoming {
                    let v = *staged
                        .get(src)
                        .unwrap_or_else(|| panic!("step {i}: rank {r} expects a send from {src}"));
                    let buf = bufs.get_mut(&r).expect("rank buffer");
                    match step.op {
                        StepOp::Sum => buf[step.arrived_offset] += v,
                        StepOp::Nop => buf[step.arrived_offset] = v,
                    }
                }
            }
        }
    }
    bufs
}

fn chunk_value(rank: usize, c: usize) -> f64 {
    (rank * 13 + c * 7 + 1) as f64
}

#[test]
fn quarantine_repair_reroutes_4node_hierarchical_allreduce() {
    let topo = Topology::new(4, 4, 4).expect("4-node GH200 topology");
    let ranks = 16usize;

    // Sanity: the unrepaired hierarchical schedule is a correct allreduce
    // under the interpreter (validates the interpreter itself).
    let scheds: BTreeMap<usize, Schedule> =
        (0..ranks).map(|r| (r, Schedule::hierarchical_ring_allreduce(r, &topo))).collect();
    let chunks = scheds[&0].chunks;
    let init: BTreeMap<usize, Vec<f64>> = (0..ranks)
        .map(|r| (r, (0..chunks).map(|c| chunk_value(r, c)).collect()))
        .collect();
    let done = interpret(&scheds, &init);
    for r in 0..ranks {
        for (c, got) in done[&r].iter().enumerate() {
            let want: f64 = (0..ranks).map(|s| chunk_value(s, c)).sum();
            assert_eq!(*got, want, "unrepaired rank {r} chunk {c}");
        }
    }

    // Quarantine node 2 (ranks 8..12): every survivor repairs its schedule
    // and the repaired collective reduces over exactly the survivors.
    let mut q = Quarantine::new();
    q.add(2);
    let survivors: Vec<usize> = (0..ranks).filter(|r| topo.node_of(*r) != 2).collect();
    let repaired: BTreeMap<usize, Schedule> = survivors
        .iter()
        .map(|&r| (r, q.repair_allreduce(r, &topo).expect("repair must succeed")))
        .collect();
    let rchunks = repaired[&0].chunks;
    assert_eq!(rchunks, survivors.len(), "repaired chunk space is the surviving world");
    let rinit: BTreeMap<usize, Vec<f64>> = survivors
        .iter()
        .map(|&r| (r, (0..rchunks).map(|c| chunk_value(r, c)).collect()))
        .collect();
    let rdone = interpret(&repaired, &rinit);
    for &r in &survivors {
        for (c, got) in rdone[&r].iter().enumerate() {
            let want: f64 = survivors.iter().map(|&s| chunk_value(s, c)).sum();
            assert_eq!(*got, want, "repaired rank {r} chunk {c}");
        }
        // The repaired schedule never routes through the quarantined node.
        for step in &repaired[&r].steps {
            for peer in step.incoming.iter().chain(&step.outgoing) {
                assert_ne!(topo.node_of(*peer), 2, "rank {r} still routed via node 2");
            }
        }
    }

    // A rank on the quarantined node cannot route around itself: typed
    // surrender, not a panic or a hang.
    match q.repair_allreduce(9, &topo) {
        Err(MpiError::Unrecoverable { rank, .. }) => assert_eq!(rank, 9),
        other => panic!("expected Unrecoverable for a quarantined rank, got {other:?}"),
    }
}

/// Satellite 1 — property: `FaultPlan` JSON round-trips exactly, for
/// chaos-derived plans decorated with every fault class (including
/// unbounded outage windows, which encode as `"inf"`).
#[test]
fn fault_plan_json_round_trip_property() {
    let cfg = PropConfig { cases: 64, ..PropConfig::default() };
    check(
        &cfg,
        "fault_plan_json_round_trip_property",
        |rng| (rng.next_u64(), rng.uniform_range(0, 101), rng.next_u64()),
        |&(seed, pct, decor)| {
            let rate = pct as f64 / 100.0;
            let mut plan = FaultPlan::chaos(seed, rate).expect("rate in range");
            if decor & 1 != 0 {
                plan = plan.with_pe_stall(decor as usize % 8, 20.0 + pct as f64, 500.0);
            }
            if decor & 2 != 0 {
                plan = plan.with_pe_crash(decor as usize % 4, 40.0);
            }
            if decor & 4 != 0 {
                plan = plan.with_delayed_flag_writes(0, 1 + decor % 5, 12.5);
            }
            if decor & 8 != 0 {
                plan = plan.with_lost_flag_writes(1, 1 + decor % 3);
            }
            if decor & 16 != 0 {
                plan = plan
                    .with_nic_outage((decor % 2) as u16, (decor % 4) as u8, 100.0, f64::INFINITY)
                    .expect("valid open window");
            }
            let json = plan.to_json_string();
            match FaultPlan::from_json_str(&json) {
                Ok(back) if back == plan => TestResult::Pass,
                Ok(back) => TestResult::Fail(format!("round-trip drift:\n{plan:?}\n!=\n{back:?}")),
                Err(e) => TestResult::Fail(format!("round-trip rejected: {e}\n{json}")),
            }
        },
    );
}

/// Acceptance: at equal cell budget the coverage-guided campaign reaches
/// strictly more distinct fault-class × layer points than the fixed
/// seed×rate grid, with every cell honoring the recovery contract.
#[test]
fn coverage_campaign_beats_grid_at_equal_budget() {
    let grid = CampaignConfig::ci(false);
    let grid_cells = grid.seeds as usize * grid.rates.len() * grid.stripes.len();
    let grid_points = coverage::grid_coverage_points(&grid);

    let cfg = CoverageCampaignConfig { budget: grid_cells as u32, ..CoverageCampaignConfig::default() };
    let report = coverage::run_coverage_campaign(&cfg, 4);
    assert_eq!(report.outcomes.len(), grid_cells, "campaign must spend exactly the budget");
    assert!(
        report.failures.is_empty(),
        "contract failures under guided search:\n{}",
        report.render()
    );
    assert!(
        report.covered.len() > grid_points.len(),
        "guided coverage ({}) must beat the grid ({}) at {} cells",
        report.covered.len(),
        grid_points.len(),
        grid_cells
    );
}

/// Acceptance: the `--channels` axis. Fault classes meeting *multiplexed*
/// load — the mux-admitted 64-channel MoE dispatch/combine cell — uphold
/// the same recovery contract: the canonical chaos mix perturbs the trace
/// yet recovers to numerics bit-identical to the fault-free baseline, a
/// lost flag write replays host-side over the plain partitioned channels
/// (unlike the collective engine, where it is unrecoverable by design),
/// and the guided campaign's covered points carry the `c64:` qualifier so
/// the axis genuinely grows the point space.
#[test]
fn chaos_contract_holds_under_multiplexed_channel_load() {
    use parcomm::core::CopyMechanism;
    use parcomm::mpi::RecoverConfig;

    let mech = CopyMechanism::ProgressionEngine;
    let recover = || Some(RecoverConfig::default());
    let clean = chaos::run_moe_cell(0xFA017, &FaultPlan::none(), 2, 64, 1, mech, recover());
    assert!(clean.survived(), "fault-free MoE cell must complete");

    // The canonical chaos mix against the 64-channel cell: perturbed,
    // survived, replayed, numerics intact.
    let plan = FaultPlan::chaos(0x5EED, 0.4).expect("rate in range");
    let a = chaos::run_moe_cell(0xFA017, &plan, 2, 64, 1, mech, recover());
    let b = chaos::run_moe_cell(0xFA017, &plan, 2, 64, 1, mech, recover());
    assert_ne!(a.digest, clean.digest, "chaos mix must perturb the multiplexed trace");
    assert!(a.survived(), "chaos mix must recover: {:?}", a.errors);
    assert_eq!(a.digest, b.digest, "multiplexed chaos replay must be deterministic");
    assert_eq!(a.numeric, clean.numeric, "recovery must preserve MoE numerics bit for bit");

    // A lost flag write recovers on plain partitioned channels (epoch
    // replay re-issues the partitions host-side) — and is a typed
    // failure, never a hang, once the ladder is disarmed.
    let loss = FaultPlan::none().with_lost_flag_writes(4, 1).with_watchdog(200_000.0);
    let lost = chaos::run_moe_cell(0xFA017, &loss, 2, 64, 1, mech, recover());
    assert!(lost.survived(), "armed ladder must replay the lost flag write");
    assert_eq!(lost.numeric, clean.numeric);
    let unrec = chaos::run_moe_cell(0xFA017, &loss, 2, 64, 1, mech, None);
    assert!(!unrec.survived(), "disarmed: a lost flag write must surface typed");

    // The guided campaign on the channel axis: zero contract failures and
    // every covered point qualified with the channel count.
    let cfg = CoverageCampaignConfig { budget: 6, channels: 64, ..CoverageCampaignConfig::default() };
    let report = coverage::run_coverage_campaign(&cfg, 2);
    assert!(
        report.failures.is_empty(),
        "contract failures on the channel axis:\n{}",
        report.render()
    );
    assert!(!report.covered.is_empty());
    assert!(
        report.covered.iter().all(|p| p.starts_with("c64:pe:")),
        "channel-axis points must be c64-qualified: {:?}",
        report.covered
    );
}

/// Acceptance: the topology-shape axis. The guided campaign on the
/// oversubscribed shape (4,2 GPUs / 2,1 NICs at 2:1 ranks per GPU — the
/// fold/unfold hierarchical schedule, `SameGpu` routes, and per-node rail
/// cycling all live) upholds the recovery contract, and every covered
/// point carries the `oversub:` qualifier so the axis genuinely grows the
/// point space. Failures, were any bisected, would carry the `--topology`
/// spec in their artifacts.
#[test]
fn chaos_contract_holds_on_oversubscribed_shape() {
    use parcomm::fault::coverage::TopologyShape;

    let cfg = CoverageCampaignConfig {
        budget: 6,
        shape: TopologyShape::Oversubscribed,
        ..CoverageCampaignConfig::default()
    };
    let report = coverage::run_coverage_campaign(&cfg, 2);
    assert!(
        report.failures.is_empty(),
        "contract failures on the shape axis:\n{}",
        report.render()
    );
    assert!(!report.covered.is_empty());
    assert!(
        report.covered.iter().all(|p| p.starts_with("oversub:pe:")),
        "shape-axis points must be oversub-qualified: {:?}",
        report.covered
    );
    // The shaped campaign is worker-count invariant like the classic one.
    let again = coverage::run_coverage_campaign(&cfg, 1);
    assert_eq!(report.render(), again.render(), "shape axis must stay deterministic");
}
