//! Cross-crate integration tests: composite workloads that exercise the
//! whole stack at once (multiple channels, collectives + point-to-point on
//! the same ranks, determinism across the full system).

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm::prelude::*;

#[test]
fn many_concurrent_channels_between_all_pairs() {
    // Every ordered rank pair on one node gets its own partitioned
    // channel; all epochs run concurrently.
    let mut sim = Simulation::with_seed(100);
    let world = MpiWorld::gh200(&sim, 1);
    let size = world.size();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let me = rank.rank();
        let parts = 4usize;
        // Create one send channel to every other rank and one recv channel
        // from every other rank, tag-disambiguated by direction.
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for peer in 0..size {
            if peer == me {
                continue;
            }
            let sbuf = rank.gpu().alloc_global(parts * 256);
            for u in 0..parts {
                sbuf.write_f64_slice(u * 256, &[(me * 10 + u) as f64; 32]);
            }
            let rbuf = rank.gpu().alloc_global(parts * 256);
            sends.push((peer, psend_init(ctx, rank, peer, 900 + me as u64, &sbuf, parts).expect("init")));
            recvs.push((peer, precv_init(ctx, rank, peer, 900 + peer as u64, &rbuf, parts).expect("init"), rbuf));
        }
        for (_, s) in &sends {
            s.start(ctx).expect("start");
        }
        for (_, r, _) in &recvs {
            r.start(ctx).expect("start");
        }
        for (_, r, _) in &recvs {
            r.pbuf_prepare(ctx).expect("pbuf_prepare");
        }
        for (_, s) in &sends {
            s.pbuf_prepare(ctx).expect("pbuf_prepare");
        }
        for (_, s) in &sends {
            for u in 0..parts {
                s.pready(ctx, u).expect("pready");
            }
        }
        for (_, s) in &sends {
            s.wait(ctx).expect("wait");
        }
        for (peer, r, rbuf) in &recvs {
            r.wait(ctx).expect("wait");
            for u in 0..parts {
                assert_eq!(
                    rbuf.read_f64(u * 256),
                    (peer * 10 + u) as f64,
                    "rank {me} from {peer} partition {u}"
                );
            }
        }
    });
    sim.run().unwrap();
}

#[test]
fn p2p_and_collective_coexist() {
    // A partitioned allreduce and a partitioned P2P channel share ranks,
    // progression engines, and the fabric in the same epoch.
    let mut sim = Simulation::with_seed(101);
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, move |ctx, rank| {
        let p = rank.size();
        let n = 4 * p * 64;
        let coll_buf = rank.gpu().alloc_global(n * 8);
        coll_buf.write_f64_slice(0, &vec![1.0; n]);
        let stream = rank.gpu().create_stream();
        let coll = pallreduce_init(ctx, rank, &coll_buf, 4, &stream, 50).expect("init");

        let p2p_buf = rank.gpu().alloc_global(1024);
        let (sreq, rreq) = if rank.rank() == 0 {
            p2p_buf.write_f64_slice(0, &[9.0; 128]);
            (Some(psend_init(ctx, rank, 1, 51, &p2p_buf, 2).expect("init")), None)
        } else if rank.rank() == 1 {
            (None, Some(precv_init(ctx, rank, 0, 51, &p2p_buf, 2).expect("init")))
        } else {
            (None, None)
        };

        coll.start(ctx).expect("start");
        if let Some(r) = &rreq {
            r.start(ctx).expect("start");
            r.pbuf_prepare(ctx).expect("pbuf_prepare");
        }
        if let Some(s) = &sreq {
            s.start(ctx).expect("start");
            s.pbuf_prepare(ctx).expect("pbuf_prepare");
        }
        coll.pbuf_prepare(ctx).expect("pbuf_prepare");

        for u in 0..4 {
            coll.pready(ctx, u).expect("pready");
        }
        if let Some(s) = &sreq {
            s.pready_range(ctx, 0..2).expect("pready_range");
        }

        coll.wait(ctx).expect("wait");
        if let Some(s) = &sreq {
            s.wait(ctx).expect("wait");
        }
        if let Some(r) = &rreq {
            r.wait(ctx).expect("wait");
            assert_eq!(p2p_buf.read_f64_slice(0, 128), vec![9.0; 128]);
        }
        assert_eq!(coll_buf.read_f64(0), p as f64);
    });
    sim.run().unwrap();
}

#[test]
fn whole_system_is_deterministic() {
    fn trace(seed: u64) -> (u64, u64) {
        let mut sim = Simulation::with_seed(seed);
        let world = MpiWorld::gh200(&sim, 2);
        let checks = Arc::new(Mutex::new(0u64));
        let c2 = checks.clone();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let n = 8 * rank.size() * 32;
            let buf = rank.gpu().alloc_global(n * 8);
            buf.write_f64_slice(0, &vec![rank.rank() as f64; n]);
            let stream = rank.gpu().create_stream();
            let coll = pallreduce_init(ctx, rank, &buf, 8, &stream, 60).expect("init");
            for _ in 0..2 {
                coll.start(ctx).expect("start");
                coll.pbuf_prepare(ctx).expect("pbuf_prepare");
                let c = coll.clone();
                stream.launch(ctx, KernelSpec::vector_add(4, 1024), move |d| {
                    c.pready_device_all(d)
                });
                coll.wait(ctx).expect("wait");
            }
            *c2.lock() += ctx.now().as_nanos();
        });
        let report = sim.run().unwrap();
        let total = *checks.lock();
        (report.end_time.as_nanos(), total)
    }
    assert_eq!(trace(7), trace(7), "same seed ⇒ identical virtual-time trace");
    assert_ne!(trace(7).0, trace(8).0, "different seed ⇒ different jitter");
}

#[test]
fn cost_model_is_tunable() {
    // Ablation hook: doubling the stream-sync cost must slow the
    // traditional model but leave the partitioned cycle untouched.
    fn sender_elapsed(sync_us: f64, partitioned: bool) -> f64 {
        let mut sim = Simulation::with_seed(55);
        let mut config = WorldConfig::gh200(1);
        config.cost.stream_sync_us = sync_us;
        let world = MpiWorld::new(&sim, config);
        let out = Arc::new(Mutex::new(0.0f64));
        let o2 = out.clone();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let buf = rank.gpu().alloc_global(8 * 1024);
            let stream = rank.gpu().create_stream();
            match rank.rank() {
                0 => {
                    if partitioned {
                        let sreq = psend_init(ctx, rank, 1, 70, &buf, 8).expect("init");
                        sreq.start(ctx).expect("start");
                        sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                        let preq =
                            prequest_create(ctx, rank, &sreq, PrequestConfig::default()).unwrap();
                        let t0 = ctx.now();
                        let preq2 = preq.clone();
                        stream.launch(ctx, KernelSpec::vector_add(1, 1024), move |d| {
                            preq2.pready_all(d)
                        });
                        sreq.wait(ctx).expect("wait");
                        *o2.lock() = ctx.now().since(t0).as_micros_f64();
                    } else {
                        let t0 = ctx.now();
                        stream.launch(ctx, KernelSpec::vector_add(1, 1024), |_| {});
                        stream.synchronize(ctx);
                        rank.send(ctx, 1, 70, &buf, 0, 8 * 1024);
                        *o2.lock() = ctx.now().since(t0).as_micros_f64();
                    }
                }
                1 => {
                    if partitioned {
                        let rreq = precv_init(ctx, rank, 0, 70, &buf, 8).expect("init");
                        rreq.start(ctx).expect("start");
                        rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                        rreq.wait(ctx).expect("wait");
                    } else {
                        rank.recv(ctx, 0, 70, &buf, 0, 8 * 1024);
                    }
                }
                _ => {}
            }
        });
        sim.run().unwrap();
        let v = *out.lock();
        v
    }
    let trad_slow = sender_elapsed(20.0, false);
    let trad_fast = sender_elapsed(7.8, false);
    assert!(trad_slow - trad_fast > 10.0, "sync cost must hit the traditional path");
    let part_slow = sender_elapsed(20.0, true);
    let part_fast = sender_elapsed(7.8, true);
    assert!(
        (part_slow - part_fast).abs() < 1.0,
        "partitioned path does not call cudaStreamSynchronize: {part_fast} vs {part_slow}"
    );
}

#[test]
fn facade_reexports_are_usable() {
    // Everything needed for a user program is reachable via the prelude.
    let sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    assert_eq!(world.size(), 4);
    let cm = CostModel::default();
    assert!(cm.stream_sync_us > 0.0);
    let spec = ClusterSpec::gh200(2);
    assert_eq!(spec.total_gpus(), 8);
    drop(sim);
}
