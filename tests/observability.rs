//! Observability-subsystem integration tests (`parcomm-obs`): tracing must
//! never perturb a run, the Chrome export must be valid and well-formed,
//! and every causal edge must point backward in virtual time.

use std::sync::Arc;

use parcomm::coll::pallreduce_init;
use parcomm::obs::{chrome_trace_json, is_causal_category, json};
use parcomm::prelude::*;
use parcomm::sim::{Mutex, TraceSpan};
use parcomm_testkit::digest::Digest;

/// Recording level for a run of the shared workload.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Level {
    Off,
    Spans,
    Causal,
}

/// Run one partitioned p2p epoch (4 ranks, 8 partitions, 2 transports) at
/// the given trace level; return the report digest and the span stream.
fn p2p_run(seed: u64, level: Level) -> (u64, Vec<TraceSpan>) {
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    match level {
        Level::Off => {}
        Level::Spans => trace.enable(),
        Level::Causal => trace.enable_causal(),
    }
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        let parts = 8usize;
        let buf = rank.gpu().alloc_global(parts * 1024);
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, 7, &buf, parts).expect("init");
                sreq.set_transport_partitions(2).expect("set_transport_partitions");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                for u in 0..parts {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 7, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
            }
            _ => {}
        }
    });
    let report = sim.run().expect("sim run");
    let mut d = Digest::new();
    d.write_u64(report.end_time.as_nanos());
    d.write_u64(report.events_processed);
    d.write_u64(report.processes);
    (d.finish(), trace.spans())
}

/// Digest of a span stream restricted to the frozen level-1 categories
/// (hashing only `(category, start, end)`, like the testkit trace digest).
fn base_stream_digest(spans: &[TraceSpan]) -> u64 {
    let base: Vec<&TraceSpan> =
        spans.iter().filter(|s| !is_causal_category(s.category)).collect();
    let mut d = Digest::new();
    d.write_usize(base.len());
    for s in &base {
        d.write_str(s.category);
        d.write_u64(s.start.as_nanos());
        d.write_u64(s.end.as_nanos());
    }
    d.finish()
}

/// The zero-perturbation contract: running the same `(program, seed)` at
/// trace level 0 (off), 1 (spans), and 2 (spans + causal handoffs) yields
/// identical end times and event counts, and level 2's base span stream is
/// byte-identical to level 1's — the causal spans are purely additive.
#[test]
fn tracing_levels_do_not_perturb_the_run() {
    for seed in [3, 0xA11CE, 0xFEED] {
        let (off_digest, off_spans) = p2p_run(seed, Level::Off);
        let (l1_digest, l1_spans) = p2p_run(seed, Level::Spans);
        let (l2_digest, l2_spans) = p2p_run(seed, Level::Causal);

        assert_eq!(off_digest, l1_digest, "seed {seed}: level 1 changed the run");
        assert_eq!(off_digest, l2_digest, "seed {seed}: level 2 changed the run");
        assert!(off_spans.is_empty(), "level 0 must record nothing");

        assert_eq!(
            base_stream_digest(&l1_spans),
            base_stream_digest(&l2_spans),
            "seed {seed}: causal level altered the frozen base span stream"
        );
        assert!(l1_spans.iter().all(|s| !is_causal_category(s.category)));
        assert!(
            l2_spans.iter().any(|s| is_causal_category(s.category)),
            "seed {seed}: causal level recorded no handoff spans (vacuous)"
        );
    }
}

/// Export a tiny 2-rank partitioned exchange and validate the Chrome
/// `trace_event` document end-to-end with the first-party JSON parser.
#[test]
fn chrome_export_of_two_rank_run_is_valid() {
    let mut sim = Simulation::with_seed(11);
    let trace = sim.trace();
    trace.enable_causal();
    let mut config = WorldConfig::gh200(1);
    config.cluster.gpus_per_node = 2;
    config.cluster.nics_per_node = 2;
    let world = MpiWorld::new(&sim, config);
    assert_eq!(world.size(), 2);
    world.run_ranks(&mut sim, |ctx, rank| {
        // Bidirectional exchange so both ranks record attributed spans.
        // Prepare order is complementary (0: send→recv, 1: recv→send)
        // because each first prepare blocks on the peer's counterpart.
        let me = rank.rank();
        let peer = 1 - me;
        let (stag, rtag) = if me == 0 { (9, 10) } else { (10, 9) };
        let sbuf = rank.gpu().alloc_global(4 * 4096);
        let rbuf = rank.gpu().alloc_global(4 * 4096);
        let sreq = psend_init(ctx, rank, peer, stag, &sbuf, 4).expect("sinit");
        let rreq = precv_init(ctx, rank, peer, rtag, &rbuf, 4).expect("rinit");
        sreq.start(ctx).expect("sstart");
        rreq.start(ctx).expect("rstart");
        if me == 0 {
            sreq.pbuf_prepare(ctx).expect("sprepare");
            rreq.pbuf_prepare(ctx).expect("rprepare");
        } else {
            rreq.pbuf_prepare(ctx).expect("rprepare");
            sreq.pbuf_prepare(ctx).expect("sprepare");
        }
        for u in 0..4 {
            sreq.pready(ctx, u).expect("pready");
        }
        sreq.wait(ctx).expect("swait");
        rreq.wait(ctx).expect("rwait");
    });
    sim.run().expect("sim run");
    let spans = trace.spans();
    let doc = chrome_trace_json(&spans);

    let v = json::parse(&doc).expect("export must be valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");

    let ph = |e: &json::JsonValue| e.get("ph").and_then(|p| p.as_str()).map(str::to_owned);
    let durations = events.iter().filter(|e| ph(e).as_deref() == Some("X")).count();
    assert_eq!(durations, spans.len(), "one X event per span");

    // Flow events come in balanced s/f pairs, one per causal edge.
    let edges = spans.iter().filter(|s| !s.caused_by.is_none()).count();
    let starts = events.iter().filter(|e| ph(e).as_deref() == Some("s")).count();
    let finishes = events.iter().filter(|e| ph(e).as_deref() == Some("f")).count();
    assert!(edges > 0, "2-rank run must record causal edges");
    assert_eq!(starts, edges);
    assert_eq!(finishes, edges);

    // Both ranks got named process tracks.
    let names: Vec<String> = events
        .iter()
        .filter(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some("process_name")
        })
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
                .map(str::to_owned)
        })
        .collect();
    assert!(names.contains(&"rank 0".to_string()), "process names: {names:?}");
    assert!(names.contains(&"rank 1".to_string()), "process names: {names:?}");

    // Every X event carries non-negative microsecond timestamps.
    for e in events.iter().filter(|e| ph(e).as_deref() == Some("X")) {
        let ts = e.get("ts").and_then(|t| t.as_f64()).expect("ts");
        let dur = e.get("dur").and_then(|d| d.as_f64()).expect("dur");
        assert!(ts >= 0.0 && dur >= 0.0);
    }
}

/// A 4-stripe cross-node put records one `wire` span per stripe and one
/// `put_complete` span per stripe *caused by* that stripe's wire span,
/// and the whole causal graph still round-trips through the Chrome
/// exporter: one X event per span and balanced s/f flow pairs per edge.
#[test]
fn striped_chrome_export_round_trips_with_per_stripe_edges() {
    let mut sim = Simulation::with_seed(0x57A9);
    let trace = sim.trace();
    trace.enable_causal();
    let world = MpiWorld::gh200(&sim, 2);
    world.run_ranks(&mut sim, |ctx, rank| {
        let parts = 4usize;
        let buf = rank.gpu().alloc_global(parts * 4096);
        match rank.rank() {
            3 => {
                let sreq = psend_init(ctx, rank, 4, 17, &buf, parts).expect("init");
                sreq.set_transport_partitions(parts).expect("transports");
                sreq.set_stripes(4).expect("stripes");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                for u in 0..parts {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            }
            4 => {
                let rreq = precv_init(ctx, rank, 3, 17, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
            }
            _ => {}
        }
    });
    sim.run().expect("striped p2p sim");
    let spans = trace.spans();

    // Four 4-stripe data puts: at least 16 wire spans, and every
    // per-stripe completion edge points at a wire span.
    let wires = spans.iter().filter(|s| s.category == "wire").count();
    assert!(wires >= 16, "4 puts x 4 stripes must record >= 16 wire spans, got {wires}");
    let mut stripe_edges = 0usize;
    for s in spans.iter().filter(|s| s.category == "put_complete") {
        let c = s.caused_by.index().expect("every put_complete has a cause");
        assert_eq!(
            spans[c].category, "wire",
            "put_complete must be caused by its stripe's wire span"
        );
        assert!(spans[c].start <= s.start, "stripe edge goes forward in time");
        stripe_edges += 1;
    }
    assert!(
        stripe_edges >= 16,
        "4 puts x 4 stripes must record >= 16 per-stripe completions, got {stripe_edges}"
    );

    let doc = chrome_trace_json(&spans);
    let v = json::parse(&doc).expect("export must be valid JSON");
    let events = v.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array");
    let ph = |e: &json::JsonValue| e.get("ph").and_then(|p| p.as_str()).map(str::to_owned);
    let durations = events.iter().filter(|e| ph(e).as_deref() == Some("X")).count();
    assert_eq!(durations, spans.len(), "one X event per span");
    let edges = spans.iter().filter(|s| !s.caused_by.is_none()).count();
    let starts = events.iter().filter(|e| ph(e).as_deref() == Some("s")).count();
    let finishes = events.iter().filter(|e| ph(e).as_deref() == Some("f")).count();
    assert_eq!(starts, edges, "one flow start per causal edge");
    assert_eq!(finishes, edges, "one flow finish per causal edge");
}

/// Completion accounting: over one striped epoch, the `net.rail<N>.bytes`
/// occupancy counters sum to exactly the payload plus the per-partition
/// completion flags — stripes never double-count or drop bytes, even when
/// the partition length does not divide by the stripe count. The epoch is
/// isolated from handshake traffic by snapshotting the counters between
/// two barriers after `pbuf_prepare` settles.
#[test]
fn striped_rail_byte_counters_sum_to_payload() {
    // 3 partitions x 98317 B: not divisible by 4 stripes, well under the
    // fabric's 1 MiB implicit-striping threshold per put.
    let parts = 3usize;
    let part_bytes = 98_317usize;
    let mut sim = Simulation::with_seed(0x4A11);
    let world = MpiWorld::gh200(&sim, 2);
    let registry = world.enable_metrics();
    let nics = world.topology().nics_per_node() as usize;
    let mid = Arc::new(Mutex::new(Vec::new()));
    let (m2, r2) = (mid.clone(), registry.clone());
    world.run_ranks(&mut sim, move |ctx, rank| {
        let buf = rank.gpu().alloc_global(parts * part_bytes);
        let sreq = (rank.rank() == 3).then(|| {
            let sreq = psend_init(ctx, rank, 4, 19, &buf, parts).expect("init");
            sreq.set_transport_partitions(parts).expect("transports");
            sreq.set_stripes(4).expect("stripes");
            sreq.start(ctx).expect("start");
            sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
            sreq
        });
        let rreq = (rank.rank() == 4).then(|| {
            let rreq = precv_init(ctx, rank, 3, 19, &buf, parts).expect("init");
            rreq.start(ctx).expect("start");
            rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
            rreq
        });
        // Handshake traffic is fully on the wire before the first barrier;
        // rank 0 snapshots the counters before anyone can issue a put.
        rank.barrier(ctx);
        if rank.rank() == 0 {
            let snap = r2.snapshot();
            *m2.lock() = (0..nics)
                .map(|r| snap.counter(&format!("net.rail{r}.bytes")).unwrap_or(0))
                .collect();
        }
        rank.barrier(ctx);
        if let Some(sreq) = sreq {
            for u in 0..parts {
                sreq.pready(ctx, u).expect("pready");
            }
            sreq.wait(ctx).expect("wait");
        }
        if let Some(rreq) = rreq {
            rreq.wait(ctx).expect("wait");
        }
    });
    sim.run().expect("rail accounting sim");
    let before = mid.lock().clone();
    assert_eq!(before.len(), nics, "mid-run snapshot must have been taken");
    let after = registry.snapshot();
    let deltas: Vec<u64> = (0..nics)
        .map(|r| after.counter(&format!("net.rail{r}.bytes")).unwrap_or(0) - before[r])
        .collect();
    let total: u64 = deltas.iter().sum();
    // Exactly the payload plus one 8-byte completion flag per partition.
    let expected = (parts * part_bytes + parts * 8) as u64;
    assert_eq!(
        total, expected,
        "rail byte counters must sum to payload + flags (deltas {deltas:?})"
    );
    assert!(
        deltas.iter().all(|&d| d > 0),
        "4 stripes must touch every rail: {deltas:?}"
    );
    let max = *deltas.iter().max().expect("nonempty");
    assert!(
        max * 2 < total,
        "no rail may carry half the striped payload: {deltas:?}"
    );
}

/// Property: causality is consistent with virtual time. Over several seeds
/// and the full causal-level partitioned allreduce, every recorded edge
/// points to an earlier-recorded span that started no later than its
/// effect.
#[test]
fn causal_edges_point_backward_in_virtual_time() {
    for seed in [1u64, 7, 42, 0xBEEF] {
        let mut sim = Simulation::with_seed(seed);
        let trace = sim.trace();
        trace.enable_causal();
        let world = MpiWorld::gh200(&sim, 1);
        let errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let e2 = errors.clone();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let partitions = 4usize;
            let n = partitions * rank.size() * 64;
            let buf = rank.gpu().alloc_global(n * 8);
            let stream = rank.gpu().create_stream();
            let mut run = || -> Result<(), MpiError> {
                let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 90)?;
                coll.start(ctx)?;
                coll.pbuf_prepare(ctx)?;
                let c2 = coll.clone();
                stream.launch(ctx, KernelSpec::vector_add(4, 256), move |d| {
                    c2.pready_device_all(d)
                });
                coll.wait(ctx)
            };
            if let Err(e) = run() {
                e2.lock().push(format!("rank {}: {e}", rank.rank()));
            }
        });
        sim.run().expect("sim run");
        assert!(errors.lock().is_empty(), "seed {seed}: {:?}", errors.lock());

        let spans = trace.spans();
        let mut edges = 0usize;
        for (i, s) in spans.iter().enumerate() {
            let Some(c) = s.caused_by.index() else { continue };
            edges += 1;
            assert!(
                c < i,
                "seed {seed}: span {i} ({}) caused by later/own span {c}",
                s.category
            );
            let cause = &spans[c];
            assert!(
                cause.start <= s.start,
                "seed {seed}: edge {} -> {} goes forward in time ({} > {})",
                cause.category,
                s.category,
                cause.start,
                s.start
            );
        }
        assert!(edges >= 16, "seed {seed}: only {edges} causal edges (vacuous)");
    }
}
