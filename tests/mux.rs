//! The `parcomm-mux` multiplexing suite: frozen-digest neutrality with the
//! mux linked, MoE dispatch/combine functional verification against a
//! serial reference, admission-order/digest invariance under submission
//! shuffle and sweep worker count, typed admission errors, per-tenant
//! metrics digest-neutrality, and the completion-path ops regressions.

use std::sync::Arc;

use parcomm::apps::{moe_reference, run_moe, MoeConfig};
use parcomm::coll::pallreduce_init;
use parcomm::gpu::MemSpace;
use parcomm::mux::{AdmissionError, ChannelTable, WeightedFair};
use parcomm::obs::chrome_trace_json_with_counters;
use parcomm::prelude::*;
use parcomm::sim::{Mutex, SimRng};
use parcomm_testkit::prop::{check, PropConfig, TestResult};
use parcomm_testkit::digest;
use parcomm_sweep::SweepSpec;

/// Frozen digests of the canonical device-prequest p2p run, first pinned
/// before the shmem backend existed and re-pinned here with `parcomm-mux`
/// fully linked into the binary: a mux that nobody instantiates must not
/// move a single event.
const PE_DIGEST: u64 = 0x45acaeb376724ea7;
const KC_DIGEST: u64 = 0x20c1bddca5782f10;

/// Canonical device-prequest p2p run (same recipe `tests/shmem.rs` pins):
/// intra-node 0 -> 1, 4 user partitions x 1 KiB, 2 transport partitions,
/// progressive device pready. Digest over the event stream + payload.
fn device_p2p_digest(copy: CopyMechanism, seed: u64) -> u64 {
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    trace.enable();
    let world = MpiWorld::new(&sim, WorldConfig::gh200(1));
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 4usize;
        let bytes = parts * 1024;
        let buf = rank.gpu().alloc_global(bytes);
        match rank.rank() {
            0 => {
                for u in 0..parts {
                    buf.write_f64_slice(u * 1024, &[(u * 3 + 1) as f64; 128]);
                }
                let sreq = psend_init(ctx, rank, 1, 11, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(ctx, rank, &sreq, PrequestConfig {
                    copy,
                    transport_partitions: 2,
                    ..PrequestConfig::default()
                })
                .expect("prequest");
                let stream = rank.gpu().create_stream();
                stream.launch(ctx, KernelSpec::vector_add(2, 256), move |d| {
                    preq.pready_all_progressive(d)
                });
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 11, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                *o2.lock() = (0..parts).map(|u| buf.read_f64(u * 1024)).collect();
            }
            _ => {}
        }
    });
    let report = sim.run().expect("p2p sim");
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    d.write_f64_slice(&out.lock());
    d.finish()
}

#[test]
fn pe_and_kernel_copy_digests_frozen_with_mux_linked() {
    assert_eq!(
        device_p2p_digest(CopyMechanism::ProgressionEngine, 0x5E11),
        PE_DIGEST,
        "Progression Engine digest moved: mux is not digest-neutral when unselected"
    );
    assert_eq!(
        device_p2p_digest(CopyMechanism::KernelCopy, 0x5E11),
        KC_DIGEST,
        "Kernel Copy digest moved: mux is not digest-neutral when unselected"
    );
}

// ---------------------------------------------------------------------------
// MoE dispatch/combine: functional correctness against a serial reference.

fn moe_checksums(mechanism: CopyMechanism, config: WorldConfig) -> (Vec<f64>, u64) {
    let mut sim = Simulation::with_seed(0xA11CE);
    let world = MpiWorld::new(&sim, config);
    let sums = Arc::new(Mutex::new(vec![0.0f64; world.size()]));
    let drops = Arc::new(Mutex::new(0u64));
    let (s2, d2) = (sums.clone(), drops.clone());
    world.run_ranks(&mut sim, move |ctx, rank| {
        let cfg = MoeConfig::functional_test(mechanism);
        let result = run_moe(ctx, rank, &cfg).expect("run_moe");
        s2.lock()[rank.rank()] = result.checksum;
        if rank.rank() == 0 {
            *d2.lock() = result.tokens_dropped;
        }
    });
    sim.run().expect("moe sim");
    let out = sums.lock().clone();
    let dropped = *drops.lock();
    (out, dropped)
}

#[test]
fn moe_matches_serial_reference_per_mechanism() {
    let reference = moe_reference(&MoeConfig::functional_test(CopyMechanism::ProgressionEngine), 4);
    for (mechanism, config) in [
        (CopyMechanism::ProgressionEngine, WorldConfig::gh200(1)),
        (CopyMechanism::KernelCopy, WorldConfig::gh200(1)),
        (
            CopyMechanism::Shmem,
            WorldConfig { mechanism: CopyMechanism::Shmem, ..WorldConfig::gh200(1) },
        ),
    ] {
        let (got, _) = moe_checksums(mechanism, config);
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{mechanism:?}: distributed MoE diverged from the serial router/expert reference"
        );
    }
}

#[test]
fn moe_capacity_overflow_drops_are_deterministic() {
    // Tight capacity forces drops; the drop count must be identical on
    // repeat runs (the router is a pure function of the seed).
    let tight = MoeConfig {
        capacity_factor_pct: 50,
        ..MoeConfig::functional_test(CopyMechanism::ProgressionEngine)
    };
    let reference = moe_reference(&tight, 4);
    let run = || {
        let mut sim = Simulation::with_seed(0xD0D0);
        let world = MpiWorld::new(&sim, WorldConfig::gh200(1));
        let sums = Arc::new(Mutex::new(vec![0.0f64; world.size()]));
        let drops = Arc::new(Mutex::new(vec![0u64; world.size()]));
        let (s2, d2) = (sums.clone(), drops.clone());
        let cfg = tight.clone();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let result = run_moe(ctx, rank, &cfg).expect("run_moe");
            s2.lock()[rank.rank()] = result.checksum;
            d2.lock()[rank.rank()] = result.tokens_dropped;
        });
        sim.run().expect("moe sim");
        let out = (sums.lock().clone(), drops.lock().clone());
        out
    };
    let (sums_a, drops_a) = run();
    let (sums_b, drops_b) = run();
    assert_eq!(drops_a, drops_b, "drop counts must be run-deterministic");
    assert!(drops_a.iter().sum::<u64>() > 0, "tight capacity must actually drop tokens");
    assert_eq!(sums_a, sums_b);
    assert_eq!(
        sums_a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "dropped tokens must keep their residual value, as in the reference"
    );
}

// ---------------------------------------------------------------------------
// Admission determinism: admitted-channel order and the full trace digest
// are invariant under seeded submission shuffle within a tick, and
// byte-identical at 1/2/8 sweep workers.

/// A symmetric all-pairs channel set (3 tenants, send+recv per peer per
/// tenant), submitted in an order shuffled by `shuffle`, admitted through
/// batched ticks, then drained for one epoch. Digest covers the run trace
/// plus the admitted spec order.
fn admitted_digest(shuffle: u64) -> u64 {
    let mut sim = Simulation::with_seed(0xBEEF);
    let trace = sim.trace();
    trace.enable();
    let world = MpiWorld::new(&sim, WorldConfig::gh200(1));
    let order = Arc::new(Mutex::new(Vec::new()));
    let o2 = order.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        use parcomm::mux::{ChannelSpec, Direction, MuxConfig, MuxService};
        let mut mux = MuxService::new(rank.world(), MuxConfig::with_weights(&[3, 1, 2]));
        let me = rank.rank();
        let mut subs = Vec::new();
        for t in 0..3usize {
            for peer in (0..rank.size()).filter(|&p| p != me) {
                for direction in [Direction::Send, Direction::Recv] {
                    subs.push(ChannelSpec {
                        tenant: t,
                        peer,
                        tag: 0x900 + t as u64,
                        partitions: 2,
                        partition_bytes: 256,
                        direction,
                    });
                }
            }
        }
        // Seeded Fisher-Yates, different per rank: the wire protocol and
        // the admitted order must not care.
        let mut rng = SimRng::seeded(shuffle ^ (me as u64).wrapping_mul(0x9E37));
        for i in (1..subs.len()).rev() {
            let j = rng.uniform_range(0, i as u64 + 1) as usize;
            subs.swap(i, j);
        }
        for spec in subs {
            let buf = rank.gpu().alloc_global(spec.partitions * spec.partition_bytes);
            mux.submit(spec, buf).expect("submit");
        }
        let mut ids = Vec::new();
        while mux.pending() > 0 {
            ids.extend(mux.tick(ctx, rank).expect("tick"));
        }
        if me == 0 {
            let mut log = o2.lock();
            for &id in &ids {
                let s = &mux.channel(id).expect("live").spec;
                log.push((s.tenant, s.peer, s.tag, matches!(s.direction, Direction::Send)));
            }
        }
        // Drain epoch 1 (already active from the tick) so real traffic
        // lands in the trace: sends first, then receive waits.
        let (mut sends, mut recvs) = (Vec::new(), Vec::new());
        for &id in &ids {
            match mux.channel(id).expect("live").spec.direction {
                Direction::Send => sends.push(id),
                Direction::Recv => recvs.push(id),
            }
        }
        for id in sends {
            mux.run_host_send_epoch(ctx, id).expect("send epoch");
        }
        for id in recvs {
            mux.run_recv_epoch(ctx, id).expect("recv epoch");
        }
    });
    let report = sim.run().expect("mux sim");
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    for (tenant, peer, tag, is_send) in order.lock().iter() {
        d.write_u64(*tenant as u64);
        d.write_u64(*peer as u64);
        d.write_u64(*tag);
        d.write_u64(*is_send as u64);
    }
    d.finish()
}

/// Admission spanning many tick batches must not deadlock: with
/// `tick_batch: 4` the 18-channel grid takes 5 ticks per rank, and a
/// receive granted early must never stall on a send that only inits in a
/// later tick (the backlog-wide init pass plus recv-first grant order).
#[test]
fn multi_tick_admission_pairs_across_batches() {
    use parcomm::mux::{ChannelSpec, Direction, MuxConfig, MuxService};
    let mut sim = Simulation::with_seed(0x71C5);
    let world = MpiWorld::new(&sim, WorldConfig::gh200(1));
    let ticks = Arc::new(Mutex::new(0usize));
    let t2 = ticks.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let mut mux = MuxService::new(
            rank.world(),
            MuxConfig { tenant_weights: vec![3, 1, 2], tick_batch: 4, ..MuxConfig::default() },
        );
        let me = rank.rank();
        for t in 0..3usize {
            for peer in (0..rank.size()).filter(|&p| p != me) {
                for direction in [Direction::Send, Direction::Recv] {
                    let spec = ChannelSpec {
                        tenant: t,
                        peer,
                        tag: 0xA00 + t as u64,
                        partitions: 2,
                        partition_bytes: 128,
                        direction,
                    };
                    let buf = rank.gpu().alloc_global(spec.partitions * spec.partition_bytes);
                    mux.submit(spec, buf).expect("submit");
                }
            }
        }
        let mut ids = Vec::new();
        let mut tick_count = 0;
        while mux.pending() > 0 {
            ids.extend(mux.tick(ctx, rank).expect("tick"));
            tick_count += 1;
        }
        assert_eq!(ids.len(), 18);
        if me == 0 {
            *t2.lock() = tick_count;
        }
        // Drain epoch 1 so the channels actually move data.
        let (mut sends, mut recvs) = (Vec::new(), Vec::new());
        for &id in &ids {
            match mux.channel(id).expect("live").spec.direction {
                Direction::Send => sends.push(id),
                Direction::Recv => recvs.push(id),
            }
        }
        for id in sends {
            mux.run_host_send_epoch(ctx, id).expect("send epoch");
        }
        for id in recvs {
            mux.run_recv_epoch(ctx, id).expect("recv epoch");
        }
    });
    sim.run().expect("multi-tick admission must not deadlock");
    assert_eq!(*ticks.lock(), 5, "18 channels at tick_batch 4 is 5 ticks");
}

#[test]
fn admission_order_is_invariant_under_submission_shuffle() {
    check(
        &PropConfig::with_cases(12),
        "admission_order_is_invariant_under_submission_shuffle",
        |rng| rng.next_u64(),
        |&shuffle| {
            assert_eq!(
                admitted_digest(shuffle),
                admitted_digest(0),
                "shuffle {shuffle:#x} changed the admitted order or the trace"
            );
            TestResult::Pass
        },
    );
}

#[test]
fn admission_digest_is_byte_identical_across_sweep_workers() {
    let spec = || {
        let mut s = SweepSpec::new();
        for shuffle in [0u64, 1, 2, 0xDEAD] {
            s.cell(format!("shuffle={shuffle:#x}"), move || admitted_digest(shuffle));
        }
        s
    };
    let render = |threads: usize| -> String {
        spec()
            .run(threads)
            .into_cells()
            .into_iter()
            .map(|(k, r)| format!("{k} -> {:#018x}\n", r.expect("cell ok")))
            .collect()
    };
    let serial = render(1);
    assert_eq!(render(2), serial, "2 workers changed the mux admission output");
    assert_eq!(render(8), serial, "8 workers changed the mux admission output");
}

// ---------------------------------------------------------------------------
// Typed admission errors.

#[test]
fn backpressure_at_the_in_flight_cap_is_typed() {
    use parcomm::mux::{ChannelSpec, Direction, MuxConfig, MuxService};
    let sim = Simulation::with_seed(1);
    let world = MpiWorld::new(&sim, WorldConfig::gh200(1));
    let mut mux = MuxService::new(
        &world,
        MuxConfig { tenant_weights: vec![1, 1], max_in_flight: 4, ..MuxConfig::default() },
    );
    let spec = |tag: u64| ChannelSpec {
        tenant: 0,
        peer: 1,
        tag,
        partitions: 2,
        partition_bytes: 128,
        direction: Direction::Send,
    };
    let buf = || Buffer::alloc(MemSpace::Host { node: 0 }, 256);
    for tag in 0..4 {
        mux.submit(spec(tag), buf()).expect("under the cap");
    }
    assert_eq!(
        mux.submit(spec(4), buf()),
        Err(AdmissionError::Backpressure { in_flight: 0, pending: 4, cap: 4 }),
    );
    assert_eq!(
        mux.submit(
            ChannelSpec { tenant: 7, ..spec(5) },
            buf()
        ),
        Err(AdmissionError::UnknownTenant { tenant: 7, tenants: 2 }),
    );
}

#[test]
fn shmem_quota_exhaustion_is_typed_per_tenant() {
    use parcomm::mux::{ChannelSpec, Direction, MuxConfig, MuxService};
    let sim = Simulation::with_seed(1);
    let config = WorldConfig { mechanism: CopyMechanism::Shmem, ..WorldConfig::gh200(1) };
    let world = MpiWorld::new(&sim, config);
    let mut mux = MuxService::new(&world, MuxConfig::with_weights(&[1, 1]));
    let quota = mux.shmem_quota(0);
    assert_eq!(quota, world.shmem_heap().bytes_per_rank() / 2);
    // One receive channel sized over the tenant's whole quota.
    let parts = 4usize;
    let per_part = (quota / parts as u64) as usize; // payload alone == quota; flags tip it over
    let spec = ChannelSpec {
        tenant: 0,
        peer: 1,
        tag: 9,
        partitions: parts,
        partition_bytes: per_part,
        direction: Direction::Recv,
    };
    let err = mux
        .submit(spec.clone(), Buffer::alloc(MemSpace::Host { node: 0 }, parts * per_part))
        .expect_err("must exceed quota");
    match err {
        AdmissionError::ShmemQuotaExceeded { tenant, requested, quota: q, used } => {
            assert_eq!(tenant, 0);
            assert_eq!(q, quota);
            assert_eq!(used, 0);
            assert!(requested > quota);
        }
        other => panic!("wrong error: {other:?}"),
    }
    // The other tenant's quota is untouched; sends never charge the heap.
    mux.submit(
        ChannelSpec { tenant: 1, direction: Direction::Send, ..spec },
        Buffer::alloc(MemSpace::Host { node: 0 }, parts * per_part),
    )
    .expect("send side never charges the heap");
}

// ---------------------------------------------------------------------------
// Teardown and re-admission: `release` frees the endpoint, returns the
// in-flight slot and heap quota, and the freed tag re-admits while the
// rest of the table keeps draining.

/// Admit → tear down → re-admit under live traffic, on a 4-rank ring with
/// two tenants and a hard in-flight cap of 4: tenant 1's epoch 2 is in
/// flight across the release of both tenant-0 channels and the
/// re-admission tick, and the re-submission only fits because `release`
/// returned the slots. Also pins the typed refusals: release of a channel
/// with an active epoch, and release of a stale id.
#[test]
fn release_returns_slots_and_readmits_under_live_traffic() {
    use parcomm::mux::{ChannelSpec, Direction, MuxConfig, MuxService};
    let mut sim = Simulation::with_seed(0x7EA2);
    let world = MpiWorld::new(&sim, WorldConfig::gh200(1));
    world.run_ranks(&mut sim, move |ctx, rank| {
        let mut mux = MuxService::new(
            rank.world(),
            MuxConfig { tenant_weights: vec![1, 1], max_in_flight: 4, ..MuxConfig::default() },
        );
        let me = rank.rank();
        let next = (me + 1) % rank.size();
        let prev = (me + rank.size() - 1) % rank.size();
        let parts = 2usize;
        let spec = |tenant: usize, peer: usize, direction: Direction| ChannelSpec {
            tenant,
            peer,
            tag: 0xC00 + tenant as u64,
            partitions: parts,
            partition_bytes: 256,
            direction,
        };
        let alloc = |rank: &Rank| rank.gpu().alloc_global(parts * 256);
        for t in 0..2usize {
            mux.submit(spec(t, next, Direction::Send), alloc(rank)).expect("submit send");
            mux.submit(spec(t, prev, Direction::Recv), alloc(rank)).expect("submit recv");
        }
        let ids = mux.tick(ctx, rank).expect("tick");
        assert_eq!(ids.len(), 4);
        // Classify the admitted ids by (tenant, direction).
        let find = |mux: &MuxService, t: usize, d: Direction| {
            mux.channels()
                .find(|(_, c)| c.spec.tenant == t && c.spec.direction == d)
                .map(|(id, _)| id)
                .expect("admitted")
        };
        let (t0_send, t0_recv) = (find(&mux, 0, Direction::Send), find(&mux, 0, Direction::Recv));
        let (t1_send, t1_recv) = (find(&mux, 1, Direction::Send), find(&mux, 1, Direction::Recv));
        // Epoch 1 (live from the tick) on everything: sends, then recvs.
        for id in [t0_send, t1_send] {
            mux.run_host_send_epoch(ctx, id).expect("send epoch 1");
        }
        for id in [t0_recv, t1_recv] {
            mux.run_recv_epoch(ctx, id).expect("recv epoch 1");
        }
        // Open tenant 1's epoch 2 (recv first: the steady send prepare
        // blocks on the receiver's RTR) and leave it in flight.
        let t1r = mux.begin_epoch(ctx, t1_recv).expect("t1 recv epoch 2");
        let t1s = mux.begin_epoch(ctx, t1_send).expect("t1 send epoch 2");
        // A channel mid-epoch refuses release, typed, and stays live.
        let busy = mux.release(ctx, t1_send).expect_err("active epoch must refuse release");
        assert!(format!("{busy}").contains("active"), "wrong refusal: {busy}");
        assert!(mux.channel(t1_send).is_some(), "failed release must leave the channel live");
        // At the cap, one more submission backpressures...
        assert!(matches!(
            mux.submit(spec(0, next, Direction::Send), alloc(rank)),
            Err(AdmissionError::Backpressure { in_flight: 4, pending: 0, cap: 4 })
        ));
        // ...until release returns tenant 0's two slots, mid-t1-traffic.
        let spec_s = mux.release(ctx, t0_send).expect("t0 send is idle");
        let spec_r = mux.release(ctx, t0_recv).expect("t0 recv is idle");
        assert_eq!(mux.in_flight(), 2);
        assert!(mux.channel(t0_send).is_none(), "released id must go stale");
        let stale = mux.release(ctx, t0_send).expect_err("stale id");
        assert!(format!("{stale}").contains("stale"), "wrong refusal: {stale}");
        // Re-admit the released specs — same tags — while t1's epoch 2 is
        // still in flight.
        mux.submit(spec_s, alloc(rank)).expect("re-submit freed send slot");
        mux.submit(spec_r, alloc(rank)).expect("re-submit freed recv slot");
        let new_ids = mux.tick(ctx, rank).expect("re-admission tick");
        assert_eq!(new_ids.len(), 2);
        assert!(
            !new_ids.contains(&t0_send) && !new_ids.contains(&t0_recv),
            "re-admitted channels must get fresh ids"
        );
        // Drive tenant 1's in-flight epoch 2 to completion.
        let s = t1s.send().expect("sender");
        s.pready_range(ctx, 0..parts).expect("pready");
        s.wait(ctx).expect("t1 send epoch 2 wait");
        t1r.recv().expect("receiver").wait(ctx).expect("t1 recv epoch 2 wait");
        // Epoch 1 on the re-admitted tenant-0 pair proves the reused tags
        // carry traffic end to end.
        let ns = find(&mux, 0, Direction::Send);
        let nr = find(&mux, 0, Direction::Recv);
        mux.run_host_send_epoch(ctx, ns).expect("re-admitted send epoch");
        mux.run_recv_epoch(ctx, nr).expect("re-admitted recv epoch");
    });
    sim.run().expect("teardown/re-admission must not deadlock");
}

/// `release` returns symmetric-heap quota: a second big shmem receive is
/// refused while the first lives, and admitted cleanly (still on the
/// shmem fast path) once the first is released.
#[test]
fn release_returns_shmem_quota_for_readmission() {
    use parcomm::mux::{ChannelSpec, Direction, MuxConfig, MuxService};
    let mut sim = Simulation::with_seed(0x7EA3);
    let config = WorldConfig { mechanism: CopyMechanism::Shmem, ..WorldConfig::gh200(1) };
    let world = MpiWorld::new(&sim, config);
    world.run_ranks(&mut sim, move |ctx, rank| {
        if rank.rank() > 1 {
            return;
        }
        let mut mux = MuxService::new(rank.world(), MuxConfig::with_weights(&[1, 1]));
        let quota = mux.shmem_quota(0);
        // ~60% of quota per channel: two concurrent reservations overrun
        // the tenant's share, two *sequential* heap binds still fit the
        // rank's physical segment (quota is half of it), so the re-admitted
        // channel negotiates shmem rather than demoting to rkey.
        let parts = 4usize;
        let per_part = (quota as usize * 6 / 10) / parts;
        let spec = |tag: u64, direction: Direction, peer: usize| ChannelSpec {
            tenant: 0,
            peer,
            tag,
            partitions: parts,
            partition_bytes: per_part,
            direction,
        };
        let alloc = |rank: &Rank| rank.gpu().alloc_global(parts * per_part);
        if rank.rank() == 0 {
            // Sender side: no heap charge, mirrors the receiver's lifecycle.
            mux.submit(spec(21, Direction::Send, 1), alloc(rank)).expect("send 21");
            assert_eq!(mux.shmem_reserved(0), 0, "sends never charge the heap");
            let id = mux.tick(ctx, rank).expect("tick")[0];
            mux.run_host_send_epoch(ctx, id).expect("epoch on 21");
            mux.release(ctx, id).expect("release 21");
            mux.submit(spec(22, Direction::Send, 1), alloc(rank)).expect("send 22");
            let id = mux.tick(ctx, rank).expect("tick")[0];
            mux.run_host_send_epoch(ctx, id).expect("epoch on 22");
        } else {
            mux.submit(spec(21, Direction::Recv, 0), alloc(rank)).expect("recv 21 fits");
            let reserved = mux.shmem_reserved(0);
            assert!(reserved > quota / 2, "one channel must hold over half the quota");
            // The second channel is refused while the first holds its bytes.
            match mux.submit(spec(22, Direction::Recv, 0), alloc(rank)) {
                Err(AdmissionError::ShmemQuotaExceeded { tenant: 0, used, .. }) => {
                    assert_eq!(used, reserved, "refusal must cite the live reservation");
                }
                other => panic!("expected quota refusal, got {other:?}"),
            }
            let id = mux.tick(ctx, rank).expect("tick")[0];
            mux.run_recv_epoch(ctx, id).expect("epoch on 21");
            assert!(
                mux.channel(id).expect("live").chan.recv().expect("recv").shmem_active(),
                "first channel must be on the shmem fast path"
            );
            mux.release(ctx, id).expect("release 21");
            assert_eq!(mux.shmem_reserved(0), 0, "release must return the heap bytes");
            mux.submit(spec(22, Direction::Recv, 0), alloc(rank)).expect("freed quota re-admits");
            let id = mux.tick(ctx, rank).expect("tick")[0];
            mux.run_recv_epoch(ctx, id).expect("epoch on 22");
            assert!(
                mux.channel(id).expect("live").chan.recv().expect("recv").shmem_active(),
                "re-admitted channel must still negotiate shmem"
            );
        }
    });
    sim.run().expect("quota re-admission sim");
}

// ---------------------------------------------------------------------------
// Per-tenant metrics: present when enabled, absent cost when not —
// enabling the registry must not move the trace digest.

#[test]
fn tenant_metrics_land_in_snapshot_and_chrome_counters() {
    let mut sim = Simulation::with_seed(0xFEED);
    let world = MpiWorld::new(&sim, WorldConfig::gh200(1));
    let registry = world.enable_metrics();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let cfg = MoeConfig::functional_test(CopyMechanism::ProgressionEngine);
        run_moe(ctx, rank, &cfg).expect("run_moe");
    });
    let report = sim.run().expect("moe sim");
    let snap = registry.snapshot();
    for t in 0..2 {
        let goodput = snap.counter(&format!("mux.tenant{t}.goodput_bytes"));
        let epochs = snap.counter(&format!("mux.tenant{t}.epochs"));
        assert!(goodput.unwrap_or(0) > 0, "tenant {t} goodput missing: {snap:?}");
        assert!(epochs.unwrap_or(0) > 0, "tenant {t} epochs missing");
    }
    let json = snap.to_json();
    assert!(json.contains("mux.tenant0.epoch_latency_us"));
    let chrome = chrome_trace_json_with_counters(&[], &[(report.end_time, snap)]);
    assert!(
        chrome.contains("mux.tenant0.goodput_bytes"),
        "counter track missing from chrome export"
    );
}

#[test]
fn tenant_metrics_are_digest_neutral() {
    let digest_with = |metrics: bool| -> u64 {
        let mut sim = Simulation::with_seed(0xFEED);
        let trace = sim.trace();
        trace.enable();
        let world = MpiWorld::new(&sim, WorldConfig::gh200(1));
        if metrics {
            world.enable_metrics();
        }
        world.run_ranks(&mut sim, move |ctx, rank| {
            let cfg = MoeConfig::functional_test(CopyMechanism::ProgressionEngine);
            run_moe(ctx, rank, &cfg).expect("run_moe");
        });
        let report = sim.run().expect("moe sim");
        digest::run_digest(&report, &trace)
    };
    assert_eq!(
        digest_with(true),
        digest_with(false),
        "mux.tenant* instruments perturbed the trace"
    );
}

// ---------------------------------------------------------------------------
// Completion-path cost regressions.

/// The mux channel table at bench scale: 4096 live channels, and N
/// operations still cost exactly N slot probes — the completion path
/// provably does not scan.
#[test]
fn channel_table_is_o1_at_4096_channels() {
    let mut table: ChannelTable<usize> = ChannelTable::new();
    let ids: Vec<_> = (0..4096).map(|i| table.insert(i)).collect();
    let base = table.probe_ops();
    for id in &ids {
        assert!(table.get(*id).is_some());
    }
    assert_eq!(table.probe_ops() - base, 4096);
    // Retire half, in an arbitrary order; removals are O(1) probes too.
    let before = table.probe_ops();
    for id in ids.iter().step_by(2) {
        table.remove(*id);
    }
    assert_eq!(table.probe_ops() - before, 2048);
}

/// The collective engine's per-event channel lookups grow linearly with
/// the event count: doubling the partition count may at most double the
/// lookup total (plus slack). A completion path that re-scanned the
/// channel table per event would blow through this bound.
#[test]
fn engine_completion_lookups_scale_linearly_with_events() {
    let ops_at = |partitions: usize| -> u64 {
        let mut sim = Simulation::with_seed(0x10CA);
        let world = MpiWorld::new(&sim, WorldConfig::gh200(1));
        let out = Arc::new(Mutex::new(0u64));
        let o2 = out.clone();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let n = partitions * rank.size() * 64;
            let buf = rank.gpu().alloc_global(n * 8);
            buf.write_f64_slice(0, &vec![1.0; n]);
            let stream = rank.gpu().create_stream();
            let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 90).expect("init");
            coll.start(ctx).expect("start");
            coll.pbuf_prepare(ctx).expect("pbuf_prepare");
            let c2 = coll.clone();
            stream.launch(ctx, KernelSpec::vector_add(4, 256), move |d| c2.pready_device_all(d));
            coll.wait(ctx).expect("wait");
            if rank.rank() == 0 {
                *o2.lock() = coll.completion_lookup_ops();
            }
        });
        sim.run().expect("allreduce sim");
        let ops = *out.lock();
        assert!(ops > 0, "counter must observe the completion path");
        ops
    };
    let small = ops_at(8);
    let large = ops_at(16);
    assert!(
        large as f64 <= small as f64 * 2.2,
        "lookups grew superlinearly: {small} @ 8 partitions vs {large} @ 16"
    );
}

/// The weighted-fair arbiter honors an 8:1 weight split over a full grant
/// cycle — the invariant the bench's fairness verdict greps for.
#[test]
fn weighted_fair_grants_honor_eight_to_one() {
    let weights = [8u64, 1, 1, 1, 1, 1, 1, 1];
    let mut wf = WeightedFair::new(&weights);
    let all = vec![true; weights.len()];
    let mut got = [0u64; 8];
    for _ in 0..150 {
        got[wf.pick(&all).expect("eligible")] += 1;
    }
    let ratio = got[0] as f64 / got[1] as f64;
    assert!((ratio - 8.0).abs() / 8.0 < 0.2, "8:1 weights gave ratio {ratio:.2}");
}
