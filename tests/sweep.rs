//! `parcomm-sweep` integration against the real simulation stack.
//!
//! The unit tests inside `crates/sweep` prove the engine on synthetic
//! closures; these tests prove the property the whole PR rests on — that
//! fanning *actual simulations* out over the work-stealing pool changes
//! nothing about their results:
//!
//! - per-cell trace digests are byte-identical at 1, 2, and 8 workers,
//!   and reproduce the frozen serial baselines bit for bit;
//! - a panicking cell surfaces as a typed error while sibling simulations
//!   complete with intact digests;
//! - a truncated JSON-lines sink resumes: only the lost cell re-runs, and
//!   the aggregated digests match the uninterrupted run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parcomm::fault::{chaos, FaultPlan};
use parcomm_sweep::{CellError, CellValue, JsonlSink, SweepSpec};

/// Frozen serial digests of `chaos::run_allreduce(seed, none, 1)` — the
/// same constants `crates/faultsim/tests/chaos.rs` pins. Parallel sweep
/// cells must reproduce them exactly.
const FROZEN: &[(u64, u64)] = &[
    (0xA11CE, 0x1398043747556f40),
    (0xB0B, 0x65b7d5c9b7bbbcb8),
    (0xC0C0A, 0xc1a31d5d266c8b20),
    (0xFA017, 0x3e5fdd5171c85ddd),
];

fn digest_spec(seeds: &[u64]) -> SweepSpec<u64> {
    let mut spec = SweepSpec::new();
    for &seed in seeds {
        spec.cell(format!("seed={seed:#x}"), move || {
            chaos::run_allreduce(seed, &FaultPlan::none(), 1).digest
        });
    }
    spec
}

fn render(spec: SweepSpec<u64>, threads: usize) -> String {
    spec.run(threads)
        .into_cells()
        .into_iter()
        .map(|(k, r)| format!("{k} -> {:#018x}\n", r.expect("cell ok")))
        .collect()
}

#[test]
fn simulation_sweep_is_byte_identical_across_thread_counts() {
    let seeds: Vec<u64> = FROZEN.iter().map(|(s, _)| *s).chain([0x5EED, 0x777]).collect();
    let serial = render(digest_spec(&seeds), 1);
    assert_eq!(render(digest_spec(&seeds), 2), serial, "2 workers changed the output");
    assert_eq!(render(digest_spec(&seeds), 8), serial, "8 workers changed the output");
    for &(seed, want) in FROZEN {
        assert!(
            serial.contains(&format!("seed={seed:#x} -> {want:#018x}")),
            "seed {seed:#x}: sweep cell diverged from the frozen serial digest\n{serial}"
        );
    }
}

#[test]
fn panicking_simulation_cell_leaves_sibling_digests_intact() {
    let mut spec = SweepSpec::new();
    for &(seed, _) in FROZEN {
        spec.cell(format!("seed={seed:#x}"), move || {
            if seed == 0xB0B {
                panic!("injected cell failure");
            }
            chaos::run_allreduce(seed, &FaultPlan::none(), 1).digest
        });
    }
    let results = spec.run(4);
    let errs: Vec<CellError> = results.errors().cloned().collect();
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].key, "seed=0xb0b");
    assert_eq!(errs[0].message, "injected cell failure");
    for &(seed, want) in FROZEN.iter().filter(|(s, _)| *s != 0xB0B) {
        assert_eq!(
            results.get(&format!("seed={seed:#x}")).and_then(|r| r.as_ref().ok()),
            Some(&want),
            "sibling cell {seed:#x} must complete with the frozen digest"
        );
    }
}

#[test]
fn truncated_sink_resumes_with_identical_digests() {
    let path = std::env::temp_dir()
        .join(format!("parcomm-root-sweep-{}-resume.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let seeds: Vec<u64> = FROZEN.iter().map(|(s, _)| *s).collect();
    let runs = Arc::new(AtomicUsize::new(0));

    let build = |runs: Arc<AtomicUsize>| {
        let mut spec = SweepSpec::new();
        for &seed in &seeds {
            let runs = runs.clone();
            spec.cell(format!("seed={seed:#x}"), move || {
                runs.fetch_add(1, Ordering::Relaxed);
                chaos::run_allreduce(seed, &FaultPlan::none(), 1).digest
            });
        }
        spec
    };

    let mut sink = JsonlSink::open(&path).expect("open");
    let first: Vec<u64> = build(runs.clone())
        .run_with_sink(2, &mut sink)
        .expect("first run")
        .into_values()
        .expect("values");
    assert_eq!(runs.load(Ordering::Relaxed), seeds.len());
    drop(sink);

    // Kill the tail: the last completed cell's line is lost mid-write.
    let text = std::fs::read_to_string(&path).expect("read");
    let mut lines: Vec<&str> = text.lines().collect();
    let dropped = lines.pop().expect("at least one line");
    std::fs::write(&path, format!("{}\n{}", lines.join("\n"), &dropped[..dropped.len() / 2]))
        .expect("rewrite");

    let mut sink = JsonlSink::open(&path).expect("reopen");
    assert_eq!(sink.len(), seeds.len() - 1, "the torn line must not count");
    let second: Vec<u64> = build(runs.clone())
        .run_with_sink(8, &mut sink)
        .expect("second run")
        .into_values()
        .expect("values");
    assert_eq!(
        runs.load(Ordering::Relaxed),
        seeds.len() + 1,
        "exactly the lost cell re-ran"
    );
    assert_eq!(first, second, "resumed digests identical to the uninterrupted run");
    for (seed, digest) in seeds.iter().zip(&first) {
        assert_eq!(
            u64::from_json(sink.get(&format!("seed={seed:#x}")).expect("on disk")),
            Some(*digest),
            "sink entry for {seed:#x} must hold the frozen digest"
        );
    }
    let _ = std::fs::remove_file(&path);
}
