//! Topology-layer integration tests: frozen whole-stack digests across
//! the refactor, multi-node determinism, typed cluster validation, and
//! the intra-node-only Kernel Copy rule with its Progression-Engine
//! fallback.

use std::sync::Arc;

use parcomm::coll::pallreduce_init_hierarchical;
use parcomm::mpi::MpiError;
use parcomm::net::{RouteClass, Topology, TopologyError};
use parcomm::prelude::*;
use parcomm::sim::Mutex;
use parcomm::ucx::UcxError;
use parcomm_testkit::digest;

/// The canonical partitioned-allreduce run (4 user partitions, 64-element
/// chunks, device-side `MPIX_Pready`), digested over the event report,
/// the level-1 trace, and the reduced rank-0 buffer. The flat digests
/// below predate the Topology refactor: they freeze the whole stack's
/// event stream, so any behavior change — routing, rail assignment, world
/// construction — shows up here.
fn allreduce_digest(nodes: u16, seed: u64, hierarchical: bool) -> u64 {
    allreduce_digest_spec(ClusterSpec::gh200(nodes), seed, hierarchical)
}

/// As [`allreduce_digest`], over an arbitrary (possibly ragged or
/// oversubscribed) cluster spec.
fn allreduce_digest_spec(cluster: ClusterSpec, seed: u64, hierarchical: bool) -> u64 {
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    trace.enable();
    let mut config = WorldConfig::gh200(cluster.nodes);
    config.cluster = cluster;
    let world = MpiWorld::new(&sim, config);
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let partitions = 4usize;
        let p = rank.size();
        let n = partitions * p * 64;
        let buf = rank.gpu().alloc_global(n * 8);
        let vals: Vec<f64> = (0..n).map(|i| (rank.rank() * 31 + i) as f64).collect();
        buf.write_f64_slice(0, &vals);
        let stream = rank.gpu().create_stream();
        let coll = if hierarchical {
            pallreduce_init_hierarchical(ctx, rank, &buf, partitions, &stream, 90)
        } else {
            pallreduce_init(ctx, rank, &buf, partitions, &stream, 90)
        }
        .expect("init");
        coll.start(ctx).expect("start");
        coll.pbuf_prepare(ctx).expect("pbuf_prepare");
        let c2 = coll.clone();
        stream.launch(ctx, KernelSpec::vector_add(4, 256), move |d| c2.pready_device_all(d));
        coll.wait(ctx).expect("wait");
        if rank.rank() == 0 {
            let got = buf.read_f64_slice(0, n);
            for (i, v) in got.iter().enumerate() {
                let expect = (31 * p * (p - 1) / 2 + p * i) as f64;
                assert_eq!(*v, expect, "allreduce sum mismatch at element {i}");
            }
            *o2.lock() = got;
        }
    });
    let report = sim.run().expect("allreduce sim");
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    d.write_f64_slice(&out.lock());
    d.finish()
}

#[test]
fn one_node_allreduce_digest_is_frozen() {
    assert_eq!(
        allreduce_digest(1, 0x70F0, false),
        0xef428efa80144ab6,
        "1-node flat allreduce digest drifted from the pre-Topology baseline"
    );
    // On one node the hierarchical schedule degenerates to the flat ring
    // step-for-step, so it reproduces the *frozen flat baseline* exactly.
    assert_eq!(
        allreduce_digest(1, 0x70F0, true),
        0xef428efa80144ab6,
        "1-node hierarchical allreduce must be run-identical to the flat ring"
    );
}

#[test]
fn two_node_digests_are_frozen() {
    assert_eq!(
        allreduce_digest(2, 0x70F0, false),
        0xfae17788c449ef51,
        "2-node flat allreduce digest drifted from the pre-Topology baseline"
    );
    assert_eq!(
        allreduce_digest(2, 0x70F0, true),
        0xa95f8b187f6fb0d8,
        "2-node hierarchical allreduce digest drifted"
    );
}

/// The canonical ragged anchor: 4 nodes of 4/2/4/1 GPUs with 2/1/2/1
/// NICs and 2:1 rank oversubscription — 22 ranks, core ring width 2,
/// surplus ranks folding on-node. Frozen like the uniform anchors: any
/// drift in ragged routing, rail-ring skipping, or the fold/unfold
/// schedule shows up here.
#[test]
fn ragged_allreduce_digests_are_frozen() {
    let spec = || ClusterSpec::gh200_ragged(&[4, 2, 4, 1], &[2, 1, 2, 1], 2);
    assert_eq!(
        allreduce_digest_spec(spec(), 0x70F0, true),
        RAGGED_HIER_DIGEST,
        "ragged hierarchical allreduce digest drifted"
    );
    assert_eq!(
        allreduce_digest_spec(spec(), 0x70F0, false),
        RAGGED_FLAT_DIGEST,
        "ragged flat allreduce digest drifted"
    );
}

const RAGGED_HIER_DIGEST: u64 = 0x1b2b5a3bf9b7c235;
const RAGGED_FLAT_DIGEST: u64 = 0x3e874c061cd82c80;
const SAME_GPU_P2P_DIGEST: u64 = 0x5d68ad23b96b7b24;

/// Oversubscribed co-resident ranks exercise the `SameGpu` route regime:
/// on one node of two GPUs at 2:1, ranks 0 and 2 share GPU 0, so their
/// partitioned p2p stays in device HBM (host-mem pseudo-link latency
/// floor, no NVLink, no NIC). Digest-frozen end to end.
#[test]
fn same_gpu_p2p_digest_is_frozen() {
    let mut sim = Simulation::with_seed(0x70F0);
    let trace = sim.trace();
    trace.enable();
    let mut config = WorldConfig::gh200(1);
    config.cluster = ClusterSpec::gh200_ragged(&[2], &[2], 2);
    let world = MpiWorld::new(&sim, config);
    let topo = world.topology();
    assert_eq!(topo.num_ranks(), 4);
    assert_eq!(topo.gpu_of(0), topo.gpu_of(2), "ranks 0 and 2 must co-reside");
    assert_eq!(topo.route_class(0, 2), RouteClass::SameGpu);
    world.run_ranks(&mut sim, |ctx, rank| {
        let parts = 4usize;
        let buf = rank.gpu().alloc_global(parts * 512);
        match rank.rank() {
            0 => {
                for u in 0..parts {
                    buf.write_f64_slice(u * 512, &[u as f64 + 0.5; 64]);
                }
                let sreq = psend_init(ctx, rank, 2, 9, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                for u in 0..parts {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            }
            2 => {
                let rreq = precv_init(ctx, rank, 0, 9, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                for u in 0..parts {
                    assert_eq!(buf.read_f64(u * 512), u as f64 + 0.5);
                }
            }
            _ => {}
        }
    });
    let report = sim.run().expect("same-gpu p2p sim");
    assert_eq!(
        digest::run_digest(&report, &trace),
        SAME_GPU_P2P_DIGEST,
        "same-GPU p2p digest drifted"
    );
}

#[test]
fn ragged_allreduce_is_deterministic() {
    let spec = || ClusterSpec::gh200_ragged(&[4, 2, 4, 1], &[2, 1, 2, 1], 2);
    let a = allreduce_digest_spec(spec(), 0x5EED, true);
    let b = allreduce_digest_spec(spec(), 0x5EED, true);
    assert_eq!(a, b, "ragged hierarchical allreduce is not deterministic");
}

#[test]
fn ragged_degenerate_specs_yield_typed_errors() {
    let sim = Simulation::with_seed(1);
    type SpecMutation = Box<dyn Fn(&mut ClusterSpec)>;
    let cases: [(SpecMutation, TopologyError); 4] = [
        (
            Box::new(|c| c.node_gpus = vec![4, 0]),
            TopologyError::EmptyNode { node: 1 },
        ),
        (
            Box::new(|c| c.node_nics = vec![4, 4, 4]),
            TopologyError::RaggedRailMismatch { gpu_nodes: 2, nic_nodes: 3 },
        ),
        (
            Box::new(|c| c.node_nics = vec![4, 9]),
            TopologyError::NicsExceedGpus { node: 1, nics: 9, gpus: 4 },
        ),
        (
            Box::new(|c| c.ranks_per_gpu = 255),
            TopologyError::OversubscriptionOverflow { node: 0, ranks: 1020, max: 256 },
        ),
    ];
    for (mutate, want) in cases {
        let mut config = WorldConfig::gh200(2);
        config.cluster.node_gpus = vec![4, 4];
        config.cluster.node_nics = vec![4, 4];
        mutate(&mut config.cluster);
        match MpiWorld::try_new(&sim, config) {
            Err(MpiError::InvalidTopology(e)) => assert_eq!(e, want),
            other => panic!("expected InvalidTopology({want:?}), got {other:?}"),
        }
    }
}

#[test]
fn cross_node_p2p_digest_is_frozen() {
    let mut sim = Simulation::with_seed(0x70F0);
    let trace = sim.trace();
    trace.enable();
    let world = MpiWorld::gh200(&sim, 2);
    world.run_ranks(&mut sim, |ctx, rank| {
        let parts = 8usize;
        let bytes = parts * 1024;
        let buf = rank.gpu().alloc_global(bytes);
        match rank.rank() {
            3 => {
                for u in 0..parts {
                    buf.write_f64_slice(u * 1024, &[u as f64 + 1.0; 128]);
                }
                let sreq = psend_init(ctx, rank, 4, 7, &buf, parts).expect("init");
                sreq.set_transport_partitions(2).expect("set_transport_partitions");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                for u in (0..parts).rev() {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            }
            4 => {
                let rreq = precv_init(ctx, rank, 3, 7, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                for u in 0..parts {
                    assert_eq!(buf.read_f64(u * 1024), u as f64 + 1.0);
                }
            }
            _ => {}
        }
    });
    let report = sim.run().expect("p2p sim");
    assert_eq!(
        digest::run_digest(&report, &trace),
        0x2290320e5c2e5b46,
        "cross-node p2p digest drifted from the pre-Topology baseline"
    );
}

#[test]
fn sixteen_node_allreduce_is_deterministic() {
    // 16 nodes × 4 GPUs = 64 ranks: far past the paper's 2×4 testbed.
    // The harness verifies the reduced sums; same seed ⇒ same digest.
    let a = allreduce_digest(16, 0x5EED, true);
    let b = allreduce_digest(16, 0x5EED, true);
    assert_eq!(a, b, "16-node hierarchical allreduce is not deterministic");
    let c = allreduce_digest(16, 0x5EED, false);
    let d = allreduce_digest(16, 0x5EED, false);
    assert_eq!(c, d, "16-node flat allreduce is not deterministic");
    assert_ne!(a, c, "flat and hierarchical schedules must differ across nodes");
}

#[test]
fn degenerate_cluster_specs_yield_typed_errors() {
    let sim = Simulation::with_seed(1);
    type SpecMutation = Box<dyn Fn(&mut ClusterSpec)>;
    let cases: [(SpecMutation, TopologyError); 4] = [
        (Box::new(|c| c.nodes = 0), TopologyError::ZeroNodes),
        (Box::new(|c| c.gpus_per_node = 0), TopologyError::ZeroGpusPerNode),
        (Box::new(|c| c.nics_per_node = 0), TopologyError::ZeroNics),
        (
            Box::new(|c| c.nics_per_node = 9),
            TopologyError::NicsExceedGpus { node: 0, nics: 9, gpus: 4 },
        ),
    ];
    for (mutate, want) in cases {
        let mut config = WorldConfig::gh200(2);
        mutate(&mut config.cluster);
        match MpiWorld::try_new(&sim, config) {
            Err(MpiError::InvalidTopology(e)) => assert_eq!(e, want),
            other => panic!("expected InvalidTopology({want:?}), got {other:?}"),
        }
    }
    // A 16×4 spec with striped NICs is valid and exposes its topology.
    let world = MpiWorld::try_new(&sim, WorldConfig::gh200(16)).expect("valid spec");
    let topo = world.topology();
    assert_eq!(topo.num_ranks(), 64);
    assert_eq!(topo.node_of(63), 15);
}

/// Kernel Copy is intra-node only (the paper's `ucp_rkey_ptr` IPC mapping
/// rides NVLink): for *every* ordered rank pair of a 2-node world,
/// `MPIX_Prequest_create` with `CopyMechanism::KernelCopy` succeeds
/// exactly when the peers share a node, the failure is the typed
/// `RkeyPtrUnavailable` transport error, and the Progression-Engine
/// fallback then completes the transfer with the right payload.
#[test]
fn cross_node_kernel_copy_always_falls_back_to_progression_engine() {
    let topo = Topology::new(2, 4, 4).expect("2x4 topology");
    for src in 0..topo.num_ranks() {
        for dst in 0..topo.num_ranks() {
            if src == dst {
                continue;
            }
            let intra = topo.same_node(src, dst);
            assert_eq!(
                RouteClass::classify(topo.location_of(src), topo.location_of(dst))
                    .ipc_eligible(),
                intra
            );
            let mut sim = Simulation::with_seed(0xC0DE ^ (src * 64 + dst) as u64);
            let world = MpiWorld::gh200(&sim, 2);
            let parts = 2usize;
            world.run_ranks(&mut sim, move |ctx, rank| {
                let buf = rank.gpu().alloc_global(parts * 256);
                if rank.rank() == src {
                    for u in 0..parts {
                        buf.write_f64_slice(u * 256, &[(u + 1) as f64; 32]);
                    }
                    let sreq = psend_init(ctx, rank, dst, 5, &buf, parts).expect("init");
                    sreq.start(ctx).expect("start");
                    sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    let want = PrequestConfig {
                        copy: CopyMechanism::KernelCopy,
                        ..PrequestConfig::default()
                    };
                    let preq = match prequest_create(ctx, rank, &sreq, want) {
                        Ok(p) => {
                            assert!(intra, "kernel copy must fail across nodes ({src}->{dst})");
                            p
                        }
                        Err(e) => {
                            assert!(!intra, "kernel copy must work intra-node ({src}->{dst})");
                            assert!(
                                matches!(
                                    e,
                                    MpiError::Transport(UcxError::RkeyPtrUnavailable(_))
                                ),
                                "want typed RkeyPtrUnavailable, got {e:?}"
                            );
                            prequest_create(ctx, rank, &sreq, PrequestConfig {
                                copy: CopyMechanism::ProgressionEngine,
                                ..want
                            })
                            .expect("PE prequest always available")
                        }
                    };
                    let stream = rank.gpu().create_stream();
                    stream
                        .launch(ctx, KernelSpec::vector_add(1, 64), move |d| preq.pready_all(d));
                    sreq.wait(ctx).expect("wait");
                } else if rank.rank() == dst {
                    let rreq = precv_init(ctx, rank, src, 5, &buf, parts).expect("init");
                    rreq.start(ctx).expect("start");
                    rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    rreq.wait(ctx).expect("wait");
                    for u in 0..parts {
                        assert_eq!(
                            buf.read_f64(u * 256),
                            (u + 1) as f64,
                            "payload mismatch {src}->{dst} partition {u}"
                        );
                    }
                }
            });
            sim.run().unwrap_or_else(|e| panic!("pair {src}->{dst}: {e:?}"));
        }
    }
}
