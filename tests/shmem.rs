//! The symmetric-heap (shmem) backend suite: digest-neutrality regressions
//! for the classic mechanisms, shmem determinism, the rkey-free invariant,
//! all-pairs route-forbidden fallback, and signal/heap fault handling.

use std::sync::Arc;

use parcomm::net::{RouteClass, Topology};
use parcomm::prelude::*;
use parcomm::sim::Mutex;
use parcomm_gpu::EmissionFaultConfig;
use parcomm_mpi::RecoverConfig;
use parcomm_testkit::digest;

/// Frozen digests of the canonical device-prequest p2p run (see
/// [`device_p2p_digest`]), captured before the shmem backend existed.
/// Linking (but not selecting) `parcomm-shmem` must not move either by a
/// single event.
const PE_DIGEST: u64 = 0x45acaeb376724ea7;
const KC_DIGEST: u64 = 0x20c1bddca5782f10;

/// Canonical device-prequest p2p run: intra-node 0 -> 1, 4 user partitions
/// x 1 KiB, 2 transport partitions, progressive device pready. Digest over
/// the event stream + received payload.
fn device_p2p_digest_cfg(config: WorldConfig, copy: CopyMechanism, seed: u64) -> u64 {
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    trace.enable();
    let world = MpiWorld::new(&sim, config);
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 4usize;
        let bytes = parts * 1024;
        let buf = rank.gpu().alloc_global(bytes);
        match rank.rank() {
            0 => {
                for u in 0..parts {
                    buf.write_f64_slice(u * 1024, &[(u * 3 + 1) as f64; 128]);
                }
                let sreq = psend_init(ctx, rank, 1, 11, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(ctx, rank, &sreq, PrequestConfig {
                    copy,
                    transport_partitions: 2,
                    ..PrequestConfig::default()
                })
                .expect("prequest");
                let stream = rank.gpu().create_stream();
                stream.launch(ctx, KernelSpec::vector_add(2, 256), move |d| {
                    preq.pready_all_progressive(d)
                });
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 11, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                let got: Vec<f64> = (0..parts).map(|u| buf.read_f64(u * 1024)).collect();
                for (u, v) in got.iter().enumerate() {
                    assert_eq!(*v, (u * 3 + 1) as f64, "payload mismatch partition {u}");
                }
                *o2.lock() = got;
            }
            _ => {}
        }
    });
    let report = sim.run().expect("p2p sim");
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    d.write_f64_slice(&out.lock());
    d.finish()
}

fn device_p2p_digest(copy: CopyMechanism, seed: u64) -> u64 {
    device_p2p_digest_cfg(WorldConfig::gh200(1), copy, seed)
}

fn shmem_config() -> WorldConfig {
    WorldConfig { mechanism: CopyMechanism::Shmem, ..WorldConfig::gh200(1) }
}

/// Regression: with the shmem crate fully linked into the world (heap
/// registered at construction) but the classic mechanisms selected, the
/// event streams are bit-identical to the pre-shmem baselines.
#[test]
fn pe_and_kernel_copy_digests_frozen_with_shmem_linked() {
    assert_eq!(
        device_p2p_digest(CopyMechanism::ProgressionEngine, 0x5E11),
        PE_DIGEST,
        "Progression Engine digest moved: shmem is not digest-neutral when unselected"
    );
    assert_eq!(
        device_p2p_digest(CopyMechanism::KernelCopy, 0x5E11),
        KC_DIGEST,
        "Kernel Copy digest moved: shmem is not digest-neutral when unselected"
    );
}

/// Same seed, same config => same digest; the shmem path is exactly as
/// deterministic as the classic mechanisms. And the shmem digest differs
/// from both baselines (it really is a third wire protocol, not an alias).
#[test]
fn shmem_device_p2p_is_deterministic() {
    let a = device_p2p_digest_cfg(shmem_config(), CopyMechanism::Shmem, 0x5E11);
    let b = device_p2p_digest_cfg(shmem_config(), CopyMechanism::Shmem, 0x5E11);
    assert_eq!(a, b, "shmem run is not deterministic");
    assert_ne!(a, PE_DIGEST);
    assert_ne!(a, KC_DIGEST);
}

/// The tentpole invariant: a shmem channel performs ZERO rkey exchanges —
/// setup replies carry symmetric offsets, and the device puts hit the
/// fabric without ever packing a key.
#[test]
fn shmem_channel_never_exchanges_rkeys() {
    let mut sim = Simulation::with_seed(7);
    let world = MpiWorld::new(&sim, shmem_config());
    let registry = world.enable_metrics();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 4usize;
        let buf = rank.gpu().alloc_global(parts * 512);
        match rank.rank() {
            0 => {
                for u in 0..parts {
                    buf.write_f64_slice(u * 512, &[(u + 9) as f64; 64]);
                }
                let sreq = psend_init(ctx, rank, 1, 3, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                assert!(sreq.shmem_active(), "intra-node default-Shmem channel must negotiate");
                assert!(sreq.shmem_denial().is_none());
                let preq = prequest_create(ctx, rank, &sreq, PrequestConfig {
                    copy: CopyMechanism::Shmem,
                    transport_partitions: 2,
                    ..PrequestConfig::default()
                })
                .expect("prequest");
                let stream = rank.gpu().create_stream();
                stream.launch(ctx, KernelSpec::vector_add(2, 128), move |d| preq.pready_all(d));
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 3, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                assert!(rreq.shmem_active());
                rreq.wait(ctx).expect("wait");
                for u in 0..parts {
                    assert_eq!(buf.read_f64(u * 512), (u + 9) as f64);
                }
            }
            _ => {}
        }
    });
    sim.run().expect("sim");
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("ucx.rkey_exchanges").unwrap_or(0),
        0,
        "shmem channel packed an rkey"
    );
    assert_eq!(snap.counter("shmem.rkey_exchanges_avoided"), Some(2));
    assert_eq!(snap.counter("shmem.binds"), Some(2), "data + flag bind on the receiver");
    assert_eq!(snap.counter("shmem.puts"), Some(2), "one put per transport partition");
    assert_eq!(snap.counter("shmem.signals"), Some(2));
    assert_eq!(snap.counter("shmem.fallbacks").unwrap_or(0), 0);
}

/// The host `MPI_Pready` binding dispatches through the same symmetric put
/// on a negotiated shmem channel (no rkeys involved either).
#[test]
fn host_pready_works_on_shmem_channels() {
    let mut sim = Simulation::with_seed(21);
    let world = MpiWorld::new(&sim, shmem_config());
    let registry = world.enable_metrics();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 2usize;
        let buf = rank.gpu().alloc_global(parts * 256);
        match rank.rank() {
            2 => {
                for u in 0..parts {
                    buf.write_f64_slice(u * 256, &[(u * 7 + 2) as f64; 32]);
                }
                let sreq = psend_init(ctx, rank, 3, 8, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                assert!(sreq.shmem_active());
                for u in 0..parts {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            }
            3 => {
                let rreq = precv_init(ctx, rank, 2, 8, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                for u in 0..parts {
                    assert_eq!(buf.read_f64(u * 256), (u * 7 + 2) as f64);
                }
            }
            _ => {}
        }
    });
    sim.run().expect("sim");
    let snap = registry.snapshot();
    assert_eq!(snap.counter("ucx.rkey_exchanges").unwrap_or(0), 0);
    // Host path never changed transport aggregation: both user partitions
    // ride the single default transport, hence one symmetric put.
    assert_eq!(snap.counter("shmem.puts"), Some(1));
}

/// All-pairs property: with the world default set to Shmem, every ordered
/// rank pair on a 2-node cluster either negotiates shmem (intra-node) or
/// demotes to the Progression Engine with a typed `RouteForbidden` — and
/// the payload is delivered either way. Mirrors the Kernel-Copy cross-node
/// fallback property.
#[test]
fn route_forbidden_shmem_falls_back_to_pe_on_all_pairs() {
    let topo = Topology::new(2, 4, 4).expect("2x4 topology");
    for src in 0..topo.num_ranks() {
        for dst in 0..topo.num_ranks() {
            if src == dst {
                continue;
            }
            let intra = topo.same_node(src, dst);
            assert_eq!(
                RouteClass::classify(topo.location_of(src), topo.location_of(dst)).ipc_eligible(),
                intra
            );
            let mut sim = Simulation::with_seed(0x57E4 ^ (src * 64 + dst) as u64);
            let world = MpiWorld::new(
                &sim,
                WorldConfig { mechanism: CopyMechanism::Shmem, ..WorldConfig::gh200(2) },
            );
            let parts = 2usize;
            world.run_ranks(&mut sim, move |ctx, rank| {
                let buf = rank.gpu().alloc_global(parts * 256);
                if rank.rank() == src {
                    for u in 0..parts {
                        buf.write_f64_slice(u * 256, &[(u + 1) as f64; 32]);
                    }
                    let sreq = psend_init(ctx, rank, dst, 5, &buf, parts).expect("init");
                    sreq.start(ctx).expect("start");
                    sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    assert_eq!(sreq.shmem_active(), intra, "negotiation verdict {src}->{dst}");
                    let want = PrequestConfig {
                        copy: CopyMechanism::Shmem,
                        ..PrequestConfig::default()
                    };
                    let preq = match prequest_create(ctx, rank, &sreq, want) {
                        Ok(p) => {
                            assert!(intra, "shmem must be denied across nodes ({src}->{dst})");
                            p
                        }
                        Err(e) => {
                            assert!(!intra, "shmem must negotiate intra-node ({src}->{dst})");
                            assert!(
                                matches!(
                                    e,
                                    MpiError::Shmem(ShmemError::RouteForbidden { .. })
                                ),
                                "want typed RouteForbidden, got {e:?}"
                            );
                            assert!(matches!(
                                sreq.shmem_denial(),
                                Some(ShmemError::RouteForbidden { .. })
                            ));
                            prequest_create(ctx, rank, &sreq, PrequestConfig {
                                copy: CopyMechanism::ProgressionEngine,
                                ..want
                            })
                            .expect("PE prequest always available")
                        }
                    };
                    let stream = rank.gpu().create_stream();
                    stream
                        .launch(ctx, KernelSpec::vector_add(1, 64), move |d| preq.pready_all(d));
                    sreq.wait(ctx).expect("wait");
                } else if rank.rank() == dst {
                    let rreq = precv_init(ctx, rank, src, 5, &buf, parts).expect("init");
                    rreq.start(ctx).expect("start");
                    rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    assert_eq!(rreq.shmem_active(), intra);
                    if !intra {
                        assert!(matches!(
                            rreq.shmem_denial(),
                            Some(ShmemError::RouteForbidden { .. })
                        ));
                    }
                    rreq.wait(ctx).expect("wait");
                    for u in 0..parts {
                        assert_eq!(
                            buf.read_f64(u * 256),
                            (u + 1) as f64,
                            "payload {src}->{dst} partition {u}"
                        );
                    }
                }
            });
            sim.run().unwrap_or_else(|e| panic!("pair {src}->{dst}: {e:?}"));
        }
    }
}

/// A heap registration failure on either end demotes the channel to the
/// Progression Engine with a typed `RegistrationFailed`, and the transfer
/// still completes.
#[test]
fn heap_registration_failure_demotes_to_pe() {
    for failed_rank in [0usize, 1] {
        let mut sim = Simulation::with_seed(33 + failed_rank as u64);
        let world = MpiWorld::new(
            &sim,
            WorldConfig {
                mechanism: CopyMechanism::Shmem,
                shmem_heap_fail: vec![failed_rank],
                ..WorldConfig::gh200(1)
            },
        );
        let registry = world.enable_metrics();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let parts = 2usize;
            let buf = rank.gpu().alloc_global(parts * 256);
            match rank.rank() {
                0 => {
                    for u in 0..parts {
                        buf.write_f64_slice(u * 256, &[(u + 4) as f64; 32]);
                    }
                    let sreq = psend_init(ctx, rank, 1, 6, &buf, parts).expect("init");
                    sreq.start(ctx).expect("start");
                    sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    assert!(!sreq.shmem_active());
                    assert!(
                        matches!(
                            sreq.shmem_denial(),
                            Some(ShmemError::RegistrationFailed { rank }) if rank == failed_rank
                        ),
                        "want RegistrationFailed({failed_rank}), got {:?}",
                        sreq.shmem_denial()
                    );
                    for u in 0..parts {
                        sreq.pready(ctx, u).expect("pready");
                    }
                    sreq.wait(ctx).expect("wait");
                }
                1 => {
                    let rreq = precv_init(ctx, rank, 0, 6, &buf, parts).expect("init");
                    rreq.start(ctx).expect("start");
                    rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    rreq.wait(ctx).expect("wait");
                    for u in 0..parts {
                        assert_eq!(buf.read_f64(u * 256), (u + 4) as f64);
                    }
                }
                _ => {}
            }
        });
        sim.run().expect("sim");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("shmem.fallbacks"), Some(1));
        assert_eq!(snap.counter("shmem.puts").unwrap_or(0), 0);
    }
}

/// A heap too small for the receive buffers demotes with `HeapExhausted`.
#[test]
fn heap_exhaustion_demotes_to_pe() {
    let mut sim = Simulation::with_seed(44);
    let world = MpiWorld::new(
        &sim,
        WorldConfig {
            mechanism: CopyMechanism::Shmem,
            shmem_heap_bytes: 64, // smaller than the 512 B receive buffer
            ..WorldConfig::gh200(1)
        },
    );
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 2usize;
        let buf = rank.gpu().alloc_global(parts * 256);
        match rank.rank() {
            0 => {
                for u in 0..parts {
                    buf.write_f64_slice(u * 256, &[(u + 6) as f64; 32]);
                }
                let sreq = psend_init(ctx, rank, 1, 9, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                assert!(!sreq.shmem_active());
                assert!(matches!(sreq.shmem_denial(), Some(ShmemError::HeapExhausted { .. })));
                for u in 0..parts {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 9, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                for u in 0..parts {
                    assert_eq!(buf.read_f64(u * 256), (u + 6) as f64);
                }
            }
            _ => {}
        }
    });
    sim.run().expect("sim");
}

/// A delayed device `shmem_signal` shifts timing but the epoch still
/// completes without recovery machinery.
#[test]
fn delayed_shmem_signal_still_completes() {
    let mut sim = Simulation::with_seed(55);
    let world = MpiWorld::new(
        &sim,
        WorldConfig {
            mechanism: CopyMechanism::Shmem,
            shmem_faults: vec![(
                0,
                EmissionFaultConfig { delay_every: 1, delay_us: 80.0, lose_every: 0 },
            )],
            ..WorldConfig::gh200(1)
        },
    );
    run_shmem_device_pair(&mut sim, &world);
    sim.run().expect("sim");
}

/// A lost device `shmem_signal` is recovered by the epoch-replay rung of
/// the recovery ladder: the host replays the undelivered transports as
/// symmetric puts under a fresh generation.
#[test]
fn lost_shmem_signal_recovers_via_epoch_replay() {
    let mut sim = Simulation::with_seed(66);
    let world = MpiWorld::new(
        &sim,
        WorldConfig {
            mechanism: CopyMechanism::Shmem,
            shmem_faults: vec![(
                0,
                EmissionFaultConfig { delay_every: 0, delay_us: 0.0, lose_every: 1 },
            )],
            recover: Some(RecoverConfig { max_replays: 4, detect_us: 5_000.0, lease_us: 2_000.0 }),
            ..WorldConfig::gh200(1)
        },
    );
    let registry = world.enable_metrics();
    run_shmem_device_pair(&mut sim, &world);
    sim.run().expect("sim");
    let snap = registry.snapshot();
    assert!(
        snap.counter("mpi.recover.replays").unwrap_or(0) >= 1,
        "lost signal must trigger an epoch replay"
    );
}

/// Shared body for the fault tests: rank 0 device-sends 2 partitions to
/// rank 1 over a shmem channel and both sides verify completion.
fn run_shmem_device_pair(sim: &mut Simulation, world: &MpiWorld) {
    world.run_ranks(sim, move |ctx, rank| {
        let parts = 2usize;
        let buf = rank.gpu().alloc_global(parts * 256);
        match rank.rank() {
            0 => {
                for u in 0..parts {
                    buf.write_f64_slice(u * 256, &[(u * 2 + 5) as f64; 32]);
                }
                let sreq = psend_init(ctx, rank, 1, 13, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                assert!(sreq.shmem_active());
                let preq = prequest_create(ctx, rank, &sreq, PrequestConfig {
                    copy: CopyMechanism::Shmem,
                    transport_partitions: 2,
                    ..PrequestConfig::default()
                })
                .expect("prequest");
                let stream = rank.gpu().create_stream();
                stream.launch(ctx, KernelSpec::vector_add(1, 64), move |d| preq.pready_all(d));
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 13, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                for u in 0..parts {
                    assert_eq!(buf.read_f64(u * 256), (u * 2 + 5) as f64);
                }
            }
            _ => {}
        }
    });
}
