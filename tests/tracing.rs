//! Span-tracing integration: the trace must attribute virtual time to the
//! right categories across the full stack, and stay free when disabled.

use parcomm::obs::occupancy;
use parcomm::prelude::*;
use parcomm::sim::SimTime;

#[test]
fn kernel_and_sync_spans_are_recorded() {
    let mut sim = Simulation::with_seed(5);
    let trace = sim.trace();
    trace.enable();
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        if rank.rank() == 0 {
            let stream = rank.gpu().create_stream();
            stream.launch(ctx, KernelSpec::vector_add(64, 1024), |_| {});
            stream.synchronize(ctx);
        }
    });
    sim.run().unwrap();
    let spans = trace.spans();
    let summary = occupancy(&spans, SimTime::ZERO, SimTime::from_nanos(u64::MAX / 2));
    assert_eq!(summary["kernel"].count, 1);
    assert_eq!(summary["stream_sync"].count, 1);
    let sync_us = summary["stream_sync"].total.as_micros_f64();
    assert!((7.0..9.0).contains(&sync_us), "sync span {sync_us} µs");
}

#[test]
fn wire_spans_cover_partitioned_puts() {
    let mut sim = Simulation::with_seed(6);
    let trace = sim.trace();
    trace.enable();
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        let buf = rank.gpu().alloc_global(4 * 4096);
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, 7, &buf, 4).expect("init");
                sreq.set_transport_partitions(4).expect("set_transport_partitions");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                for u in 0..4 {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 7, &buf, 4).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
            }
            _ => {}
        }
    });
    sim.run().unwrap();
    let spans = trace.spans();
    let summary = occupancy(&spans, SimTime::ZERO, SimTime::from_nanos(u64::MAX / 2));
    // 4 data puts + 4 chained flag puts + control messages: at least 8
    // wire spans.
    assert!(summary["wire"].count >= 8, "wire spans: {}", summary["wire"].count);
}

#[test]
fn disabled_tracing_records_nothing_across_the_stack() {
    let mut sim = Simulation::with_seed(7);
    let trace = sim.trace();
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        if rank.rank() == 0 {
            let stream = rank.gpu().create_stream();
            stream.launch(ctx, KernelSpec::vector_add(8, 1024), |_| {});
            stream.synchronize(ctx);
        }
    });
    sim.run().unwrap();
    assert!(trace.spans().is_empty());
}
