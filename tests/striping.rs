//! Striping conformance suite: multi-path striped partitioned transfers
//! must be *invisible* to every observable except time and rail
//! occupancy.
//!
//! - a seeded property test (with shrinking) checks striped reassembly is
//!   byte-identical to the single-path protocol across random payload
//!   sizes, partition counts, and stripe counts;
//! - stripe count 1 must reproduce the pre-striping frozen whole-stack
//!   digests bit-for-bit (`tests/topology.rs` baselines);
//! - 2- and 4-stripe cross-node runs get their own frozen digests;
//! - NIC outages mid-transfer re-stripe onto the surviving rails, and an
//!   all-rails outage surfaces as the typed
//!   [`UcxError::PutTimeout`] through the wait watchdog — never a panic;
//! - stripe counts degrade gracefully where the route class offers fewer
//!   paths, and invalid counts are typed `InvalidArgument` errors.

use std::sync::Arc;

use parcomm::fault::{chaos, FaultPlan};
use parcomm::mpi::MpiError;
use parcomm::net::MAX_STRIPES;
use parcomm::prelude::*;
use parcomm::sim::Mutex;
use parcomm::ucx::UcxError;
use parcomm_testkit::digest;
use parcomm_testkit::prop::{check, PropConfig, TestResult};

/// Deterministic per-byte payload pattern: distinct across partitions and
/// offsets so any stripe misplacement (wrong offset, wrong partition,
/// truncation) changes the received bytes.
fn pattern(part: usize, i: usize) -> u8 {
    ((part * 131 + i * 7) % 251) as u8
}

/// One cross-node psend/precv epoch on 2 GH200 nodes (sender rank 3 =
/// last GPU of node 0, receiver rank 4 = first GPU of node 1) with the
/// sender's channel set to `stripes`. Returns the receiver's buffer bytes
/// after `wait` — the reassembled payload the property test compares.
fn cross_node_payload(parts: usize, part_bytes: usize, stripes: usize) -> Vec<u8> {
    let mut sim = Simulation::with_seed(0x5712E5);
    let world = MpiWorld::gh200(&sim, 2);
    let received = Arc::new(Mutex::new(Vec::new()));
    let r2 = received.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let buf = rank.gpu().alloc_global(parts * part_bytes);
        match rank.rank() {
            3 => {
                for u in 0..parts {
                    let bytes: Vec<u8> = (0..part_bytes).map(|i| pattern(u, i)).collect();
                    buf.write_bytes(u * part_bytes, &bytes);
                }
                let sreq = psend_init(ctx, rank, 4, 9, &buf, parts).expect("psend init");
                sreq.set_transport_partitions(parts).expect("transports");
                sreq.set_stripes(stripes).expect("stripes");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                for u in 0..parts {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            }
            4 => {
                let rreq = precv_init(ctx, rank, 3, 9, &buf, parts).expect("precv init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                *r2.lock() = buf.read_bytes(0, parts * part_bytes);
            }
            _ => {}
        }
    });
    sim.run().expect("cross-node p2p sim");
    Arc::try_unwrap(received).expect("ranks done").into_inner()
}

/// Satellite 1 — property: for random (partition count, partition bytes,
/// stripe count), the striped receiver payload is byte-identical to the
/// single-path receiver payload. Shrinking drives a failure toward the
/// smallest payload/stripe combination; shrunk-invalid inputs (zero
/// partitions, zero bytes, stripe counts without a multi-path plan) are
/// discarded rather than failed.
#[test]
fn striped_reassembly_matches_single_path() {
    let cfg = PropConfig { cases: 20, ..PropConfig::default() };
    check(
        &cfg,
        "striped_reassembly_matches_single_path",
        |rng| {
            (
                rng.uniform_range(1, 9),    // partitions
                rng.uniform_range(1, 4097), // bytes per partition
                rng.uniform_range(2, 9),    // stripe count
            )
        },
        |&(parts, part_bytes, stripes)| {
            if parts == 0 || part_bytes == 0 || stripes < 2 {
                return TestResult::Discard;
            }
            let (parts, part_bytes, stripes) =
                (parts as usize, part_bytes as usize, stripes as usize);
            let single = cross_node_payload(parts, part_bytes, 1);
            let striped = cross_node_payload(parts, part_bytes, stripes);
            if single == striped {
                TestResult::Pass
            } else {
                let diverges = single.iter().zip(&striped).position(|(a, b)| a != b);
                TestResult::Fail(format!(
                    "striped payload diverges from single-path at byte {diverges:?} \
                     (parts={parts}, part_bytes={part_bytes}, stripes={stripes})"
                ))
            }
        },
    );
}

/// The exact frozen-digest recipe of `tests/topology.rs`
/// (`cross_node_p2p_digest_is_frozen`), with the stripe count set
/// explicitly. At `stripes == 1` it must reproduce the pre-striping
/// baseline bit-for-bit; higher counts get their own frozen digests.
fn frozen_recipe_digest(stripes: usize) -> u64 {
    let mut sim = Simulation::with_seed(0x70F0);
    let trace = sim.trace();
    trace.enable();
    let world = MpiWorld::gh200(&sim, 2);
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 8usize;
        let bytes = parts * 1024;
        let buf = rank.gpu().alloc_global(bytes);
        match rank.rank() {
            3 => {
                for u in 0..parts {
                    buf.write_f64_slice(u * 1024, &[u as f64 + 1.0; 128]);
                }
                let sreq = psend_init(ctx, rank, 4, 7, &buf, parts).expect("init");
                sreq.set_transport_partitions(2).expect("set_transport_partitions");
                sreq.set_stripes(stripes).expect("set_stripes");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                for u in (0..parts).rev() {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            }
            4 => {
                let rreq = precv_init(ctx, rank, 3, 7, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                for u in 0..parts {
                    assert_eq!(buf.read_f64(u * 1024), u as f64 + 1.0);
                }
            }
            _ => {}
        }
    });
    let report = sim.run().expect("p2p sim");
    digest::run_digest(&report, &trace)
}

/// Satellite 2 — stripe count 1 is the identity: an explicit
/// `set_stripes(1)` on the frozen-recipe channel reproduces the
/// pre-striping whole-stack digest bit-for-bit.
#[test]
fn stripe_count_one_reproduces_frozen_cross_node_digest() {
    assert_eq!(
        frozen_recipe_digest(1),
        0x2290320e5c2e5b46,
        "set_stripes(1) must be run-identical to the pre-striping protocol"
    );
}

/// Satellite 2 — new frozen anchors: 2- and 4-stripe cross-node runs are
/// deterministic, distinct from single-path and from each other, and
/// pinned so future routing changes show up here.
#[test]
fn multi_stripe_cross_node_digests_are_frozen() {
    let two = frozen_recipe_digest(2);
    let four = frozen_recipe_digest(4);
    assert_eq!(two, frozen_recipe_digest(2), "2-stripe run is not deterministic");
    assert_eq!(four, frozen_recipe_digest(4), "4-stripe run is not deterministic");
    assert_ne!(two, 0x2290320e5c2e5b46, "2-stripe routing must change the trace");
    assert_ne!(two, four, "2- and 4-stripe routings must differ");
    assert_eq!(two, 0x09875afc126d5503, "2-stripe cross-node digest drifted");
    assert_eq!(four, 0x1246ae4aedbcc0ec, "4-stripe cross-node digest drifted");
}

/// The canonical partitioned-allreduce digest of `tests/topology.rs`,
/// with the world's cross-node stripe count set explicitly.
fn allreduce_digest_striped(nodes: u16, seed: u64, hierarchical: bool, stripes: usize) -> u64 {
    use parcomm::coll::pallreduce_init_hierarchical;
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    trace.enable();
    let world = {
        let mut cfg = WorldConfig::gh200(nodes);
        cfg.stripes = stripes;
        MpiWorld::new(&sim, cfg)
    };
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let partitions = 4usize;
        let p = rank.size();
        let n = partitions * p * 64;
        let buf = rank.gpu().alloc_global(n * 8);
        let vals: Vec<f64> = (0..n).map(|i| (rank.rank() * 31 + i) as f64).collect();
        buf.write_f64_slice(0, &vals);
        let stream = rank.gpu().create_stream();
        let coll = if hierarchical {
            pallreduce_init_hierarchical(ctx, rank, &buf, partitions, &stream, 90)
        } else {
            pallreduce_init(ctx, rank, &buf, partitions, &stream, 90)
        }
        .expect("init");
        coll.start(ctx).expect("start");
        coll.pbuf_prepare(ctx).expect("pbuf_prepare");
        let c2 = coll.clone();
        stream.launch(ctx, KernelSpec::vector_add(4, 256), move |d| c2.pready_device_all(d));
        coll.wait(ctx).expect("wait");
        if rank.rank() == 0 {
            let got = buf.read_f64_slice(0, n);
            for (i, v) in got.iter().enumerate() {
                let expect = (31 * p * (p - 1) / 2 + p * i) as f64;
                assert_eq!(*v, expect, "allreduce sum mismatch at element {i}");
            }
            *o2.lock() = got;
        }
    });
    let report = sim.run().expect("allreduce sim");
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    d.write_f64_slice(&out.lock());
    d.finish()
}

/// Satellite 2 — a `stripes: 1` world is bit-identical to the default
/// world on the frozen 2-node allreduce baselines, and a striped world
/// still passes the numeric assertions deterministically.
#[test]
fn stripe_count_one_world_reproduces_frozen_allreduce_digests() {
    assert_eq!(
        allreduce_digest_striped(2, 0x70F0, false, 1),
        0xfae17788c449ef51,
        "stripes=1 world drifted from the frozen 2-node flat baseline"
    );
    assert_eq!(
        allreduce_digest_striped(2, 0x70F0, true, 1),
        0xa95f8b187f6fb0d8,
        "stripes=1 world drifted from the frozen 2-node hierarchical baseline"
    );
}

/// A 4-stripe world changes the trace (cross-node channels stripe) but
/// not the reduction; the run stays deterministic.
#[test]
fn striped_allreduce_is_deterministic_and_numerically_identical() {
    let a = allreduce_digest_striped(2, 0x70F0, true, 4);
    let b = allreduce_digest_striped(2, 0x70F0, true, 4);
    assert_eq!(a, b, "4-stripe hierarchical allreduce is not deterministic");
    assert_ne!(
        a, 0xa95f8b187f6fb0d8,
        "4-stripe cross-node channels must change the event stream"
    );
}

/// Cross-node 4-stripe psend under chaos: rank 4 (node 1) streams four
/// 64 KiB partitions to rank 0 (node 0) — below the fabric's implicit
/// striping threshold, so only the plan spreads them. Returns rank 0's
/// per-partition checksums as the numeric observable.
fn striped_chaos_round(seed: u64, plan: &FaultPlan, stripes: usize) -> chaos::ChaosRun {
    const PARTS: usize = 4;
    const PART_F64: usize = 8 * 1024; // 64 KiB per partition
    chaos::run_world(seed, plan, 2, move |ctx, rank| {
        let buf = rank.gpu().alloc_global(PARTS * PART_F64 * 8);
        match rank.rank() {
            4 => {
                for u in 0..PARTS {
                    buf.write_f64_slice(u * PART_F64 * 8, &vec![(u + 1) as f64; PART_F64]);
                }
                let sreq = psend_init(ctx, rank, 0, 0x33, &buf, PARTS)?;
                sreq.set_transport_partitions(PARTS)?;
                sreq.set_stripes(stripes)?;
                sreq.start(ctx)?;
                sreq.pbuf_prepare(ctx)?;
                // The first-call handshake (receiver-side mem_map + rkey
                // packing) costs a few hundred virtual µs; holding the
                // preadys until t ≥ 2000 µs gives outage windows a put
                // window to target that is cleanly past the handshake.
                ctx.advance(SimDuration::from_micros_f64(2000.0));
                for u in 0..PARTS {
                    sreq.pready(ctx, u)?;
                }
                sreq.wait(ctx)?;
                Ok(Vec::new())
            }
            0 => {
                let rreq = precv_init(ctx, rank, 4, 0x33, &buf, PARTS)?;
                rreq.start(ctx)?;
                rreq.pbuf_prepare(ctx)?;
                rreq.wait(ctx)?;
                Ok((0..PARTS)
                    .map(|u| buf.read_f64_slice(u * PART_F64 * 8, PART_F64).iter().sum())
                    .collect())
            }
            _ => Ok(Vec::new()),
        }
    })
}

/// Satellite 3 — a NIC outage mid-transfer re-stripes the planned stripes
/// onto the surviving rails: the run survives, delivers identical bytes,
/// replays deterministically, and pays the degraded-bandwidth cost.
#[test]
fn nic_outage_mid_transfer_restripes_onto_surviving_rails() {
    let clean = striped_chaos_round(0x57AB, &FaultPlan::none(), 4);
    assert!(clean.survived(), "fault-free round: {:?}", clean.errors);
    // Two of the four rails go dark across the put window (one NIC on
    // each node, covering both directions of the rail pairing).
    let plan = FaultPlan::none()
        .with_nic_outage(1, 1, 50.0, 1e9)
        .expect("valid window")
        .with_nic_outage(0, 2, 50.0, 1e9)
        .expect("valid window")
        .with_watchdog(5e6);
    let a = striped_chaos_round(0x57AB, &plan, 4);
    let b = striped_chaos_round(0x57AB, &plan, 4);
    assert_eq!(a.digest, b.digest, "re-striped run must replay identically");
    assert!(a.survived(), "surviving rails must absorb the stripes: {:?}", a.errors);
    assert_eq!(a.numeric, clean.numeric, "re-striping must not corrupt the payload");
    assert_ne!(a.digest, clean.digest, "the outage must actually reroute stripes");
    assert!(
        a.end_time_us > clean.end_time_us,
        "two rails move the payload slower than four ({} vs {})",
        a.end_time_us,
        clean.end_time_us
    );
}

/// Satellite 3 — when *every* rail on the sender's node is down, the
/// striped put exhausts its retry budget and the armed watchdog surfaces
/// the typed [`UcxError::PutTimeout`] — a typed error path, not a panic.
#[test]
fn all_rails_down_surfaces_typed_put_timeout() {
    // The outage opens after the first-call handshake settles (well under
    // 1500 µs) but before the held-back preadys issue the data puts
    // (t ≥ 2000 µs), so it is the *striped transfer* that hits the wall.
    let plan = FaultPlan::none()
        .with_nic_outage(1, 0, 1500.0, f64::INFINITY)
        .expect("valid window")
        .with_nic_outage(1, 1, 1500.0, f64::INFINITY)
        .expect("valid window")
        .with_nic_outage(1, 2, 1500.0, f64::INFINITY)
        .expect("valid window")
        .with_nic_outage(1, 3, 1500.0, f64::INFINITY)
        .expect("valid window")
        .with_watchdog(5_000.0);
    let run = striped_chaos_round(0xDEAD, &plan, 4);
    assert!(!run.survived(), "an all-rails outage cannot be survived");
    assert!(
        run.errors
            .iter()
            .any(|(_, e)| matches!(e, MpiError::Transport(UcxError::PutTimeout { .. }))),
        "want a typed PutTimeout from the sender, got {:?}",
        run.errors
    );
}

/// Satellite 3 — graceful degradation: a stripe count larger than the
/// route class supports clamps to the available paths. An intra-node
/// NvLink channel accepts `set_stripes(MAX_STRIPES)` and still delivers
/// the exact payload, and a 1-byte-partition cross-node channel collapses
/// to one stripe per byte without corruption.
#[test]
fn stripe_counts_degrade_gracefully_with_route_class() {
    // Intra-node NvLink pair (ranks 0 → 1 on one node).
    let mut sim = Simulation::with_seed(0x1A7E);
    let world = MpiWorld::gh200(&sim, 1);
    let ok = Arc::new(Mutex::new(false));
    let ok2 = ok.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 4usize;
        let buf = rank.gpu().alloc_global(parts * 512);
        match rank.rank() {
            0 => {
                for u in 0..parts {
                    buf.write_f64_slice(u * 512, &[(u * u + 3) as f64; 64]);
                }
                let sreq = psend_init(ctx, rank, 1, 11, &buf, parts).expect("init");
                sreq.set_stripes(MAX_STRIPES).expect("max stripe count is valid everywhere");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                for u in 0..parts {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 11, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                for u in 0..parts {
                    assert_eq!(buf.read_f64(u * 512), (u * u + 3) as f64);
                }
                *ok2.lock() = true;
            }
            _ => {}
        }
    });
    sim.run().expect("intra-node striped sim");
    assert!(*ok.lock(), "receiver must have verified the NvLink payload");
    // Cross-node with 1-byte partitions: more stripes than bytes.
    assert_eq!(
        cross_node_payload(2, 1, 8),
        cross_node_payload(2, 1, 1),
        "stripe count must clamp to the byte count"
    );
}

/// Satellite 3 — stripe-count validation is typed: zero and
/// beyond-maximum counts are `InvalidArgument`, and reconfiguration after
/// a partition was marked ready is rejected.
#[test]
fn invalid_stripe_counts_are_typed_errors() {
    let mut sim = Simulation::with_seed(0x2B2B);
    let world = MpiWorld::gh200(&sim, 2);
    world.run_ranks(&mut sim, |ctx, rank| {
        let parts = 2usize;
        let buf = rank.gpu().alloc_global(parts * 256);
        match rank.rank() {
            3 => {
                let sreq = psend_init(ctx, rank, 4, 13, &buf, parts).expect("init");
                for bad in [0usize, MAX_STRIPES + 1] {
                    match sreq.set_stripes(bad) {
                        Err(MpiError::InvalidArgument { context }) => {
                            assert!(
                                context.contains("stripe count"),
                                "error must name the stripe count: {context}"
                            );
                        }
                        other => panic!("set_stripes({bad}) must be InvalidArgument: {other:?}"),
                    }
                }
                sreq.set_stripes(MAX_STRIPES).expect("max is valid");
                sreq.set_stripes(2).expect("reconfiguration before ready is valid");
                for u in 0..parts {
                    buf.write_f64_slice(u * 256, &[7.0; 32]);
                }
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                sreq.pready(ctx, 0).expect("pready");
                match sreq.set_stripes(4) {
                    Err(MpiError::InvalidArgument { context }) => {
                        assert!(context.contains("ready"), "error must say why: {context}");
                    }
                    other => panic!("set_stripes after pready must fail: {other:?}"),
                }
                sreq.pready(ctx, 1).expect("pready");
                sreq.wait(ctx).expect("wait");
            }
            4 => {
                let rreq = precv_init(ctx, rank, 3, 13, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                assert_eq!(buf.read_f64(0), 7.0);
            }
            _ => {}
        }
    });
    sim.run().expect("validation sim");
}
