//! Determinism regression tests: the paper's reproducibility contract is
//! that a `(program, seed)` pair fully determines the simulation trace.
//! Each scenario here runs twice per seed and must produce byte-identical
//! `parcomm-testkit` trace digests, and runs with different seeds must
//! produce *different* digests (timing jitter flows from the seed, so a
//! digest collision across seeds would mean the program never touched the
//! simulation RNG — a vacuous pass).

use std::sync::Arc;

use parcomm::apps::{run_jacobi, JacobiConfig, JacobiModel};
use parcomm::coll::pallreduce_init;
use parcomm::gpu::KernelSpec;
use parcomm::mpi::MpiWorld;
use parcomm::prelude::*;
use parcomm::sim::Mutex;
use parcomm_testkit::{digest, sweep};

const SEEDS: [u64; 3] = [0xA11CE, 0xB0B, 0xC0C0A];

/// Run the partitioned ring allreduce across 4 ranks with tracing on and
/// digest the full run (span stream + report + reduced values).
fn allreduce_digest(seed: u64) -> u64 {
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    trace.enable();
    let world = MpiWorld::gh200(&sim, 1);
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let partitions = 4usize;
        let n = partitions * rank.size() * 64;
        let buf = rank.gpu().alloc_global(n * 8);
        let vals: Vec<f64> = (0..n).map(|i| (rank.rank() * 31 + i) as f64).collect();
        buf.write_f64_slice(0, &vals);
        let stream = rank.gpu().create_stream();
        let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 90).expect("init");
        coll.start(ctx).expect("start");
        coll.pbuf_prepare(ctx).expect("pbuf_prepare");
        let c2 = coll.clone();
        stream.launch(ctx, KernelSpec::vector_add(4, 256), move |d| c2.pready_device_all(d));
        coll.wait(ctx).expect("wait");
        if rank.rank() == 0 {
            *o2.lock() = buf.read_f64_slice(0, n);
        }
    });
    let report = sim.run().expect("allreduce sim");
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    d.write_f64_slice(&out.lock());
    d.finish()
}

/// Run one partitioned p2p epoch (8 partitions, 2 transports) and digest it.
fn p2p_digest(seed: u64) -> u64 {
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    trace.enable();
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        let parts = 8usize;
        let bytes = parts * 1024;
        let buf = rank.gpu().alloc_global(bytes);
        match rank.rank() {
            0 => {
                for u in 0..parts {
                    buf.write_f64_slice(u * 1024, &[u as f64 + 1.0; 128]);
                }
                let sreq = psend_init(ctx, rank, 1, 7, &buf, parts).expect("init");
                sreq.set_transport_partitions(2).expect("set_transport_partitions");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                for u in (0..parts).rev() {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 7, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                for u in 0..parts {
                    assert!(rreq.parrived(u));
                }
            }
            _ => {}
        }
    });
    let report = sim.run().expect("p2p sim");
    digest::run_digest(&report, &trace)
}

/// Run the 2-D Jacobi solver functionally and digest run + checksums.
fn jacobi_digest(seed: u64) -> u64 {
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    trace.enable();
    let world = MpiWorld::gh200(&sim, 1);
    let sums = Arc::new(Mutex::new(Vec::new()));
    let s2 = sums.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let cfg = JacobiConfig::functional_test(JacobiModel::Partitioned(CopyMechanism::KernelCopy));
        let result = run_jacobi(ctx, rank, &cfg).expect("run_jacobi");
        s2.lock().push(result.checksum);
    });
    let report = sim.run().expect("jacobi sim");
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    d.write_f64_slice(&sums.lock());
    d.finish()
}

#[test]
fn ring_allreduce_trace_is_seed_deterministic() {
    sweep::assert_deterministic_and_seed_sensitive(&SEEDS, allreduce_digest);
}

#[test]
fn partitioned_p2p_trace_is_seed_deterministic() {
    sweep::assert_deterministic_and_seed_sensitive(&SEEDS, p2p_digest);
}

#[test]
fn jacobi_trace_is_seed_deterministic() {
    sweep::assert_deterministic_and_seed_sensitive(&SEEDS, jacobi_digest);
}

#[test]
fn jacobi_checksum_is_seed_independent() {
    // The *timing* trace varies with the seed, but the numerics must not:
    // the functional stencil result depends only on the initial field.
    let checksum = |seed: u64| {
        let mut sim = Simulation::with_seed(seed);
        let world = MpiWorld::gh200(&sim, 1);
        let sums = Arc::new(Mutex::new(Vec::new()));
        let s2 = sums.clone();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let cfg = JacobiConfig::functional_test(JacobiModel::Partitioned(CopyMechanism::KernelCopy));
            let result = run_jacobi(ctx, rank, &cfg).expect("run_jacobi");
            s2.lock().push((rank.rank(), result.checksum.to_bits()));
        });
        sim.run().expect("jacobi sim");
        // Rank completion order may legitimately vary with the seed; the
        // per-rank numerics must not.
        let mut v = sums.lock().clone();
        v.sort_unstable();
        v
    };
    sweep::assert_all_equal([
        ("seed 1", checksum(1)),
        ("seed 2", checksum(2)),
        ("seed 3", checksum(3)),
    ]);
}
