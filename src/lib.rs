//! # parcomm — MPI-native GPU-initiated MPI Partitioned communication
//!
//! A Rust reproduction of *"Design and Implementation of MPI-Native
//! GPU-Initiated MPI Partitioned Communication"* (SC 2024): partitioned
//! point-to-point with device-side `MPIX_Pready` bindings (thread / warp /
//! block aggregation; Progression-Engine and Kernel-Copy mechanisms),
//! schedule-based partitioned collectives, and every substrate the paper's
//! system runs on — a deterministic simulated GH200 cluster (CUDA-like GPU
//! model, NVLink/C2C/InfiniBand fabric, UCX-like RMA layer, MPI core, and
//! an NCCL baseline).
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and
//! hardware-substitution rationale, and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use parcomm::prelude::*;
//!
//! let mut sim = Simulation::with_seed(42);
//! let world = MpiWorld::gh200(&sim, 1); // one node, four GH200
//! world.run_ranks(&mut sim, |ctx, rank| {
//!     let buf = rank.gpu().alloc_global(4 * 1024);
//!     match rank.rank() {
//!         0 => {
//!             buf.write_f64_slice(0, &[1.0; 512]);
//!             let sreq = psend_init(ctx, rank, 1, 7, &buf, 4).expect("init");
//!             sreq.start(ctx).expect("start");
//!             sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
//!             for u in 0..4 {
//!                 sreq.pready(ctx, u).expect("pready");
//!             }
//!             sreq.wait(ctx).expect("wait");
//!         }
//!         1 => {
//!             let rreq = precv_init(ctx, rank, 0, 7, &buf, 4).expect("init");
//!             rreq.start(ctx).expect("start");
//!             rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
//!             rreq.wait(ctx).expect("wait");
//!             assert_eq!(buf.read_f64(0), 1.0);
//!         }
//!         _ => {}
//!     }
//! });
//! sim.run().unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use parcomm_apps as apps;
pub use parcomm_coll as coll;
pub use parcomm_core as core;
pub use parcomm_fault as fault;
pub use parcomm_gpu as gpu;
pub use parcomm_mpi as mpi;
pub use parcomm_mux as mux;
pub use parcomm_nccl as nccl;
pub use parcomm_net as net;
pub use parcomm_obs as obs;
pub use parcomm_recover as recover;
pub use parcomm_shmem as shmem;
pub use parcomm_sim as sim;
pub use parcomm_ucx as ucx;

/// The common imports for writing parcomm programs.
pub mod prelude {
    pub use parcomm_coll::{pallreduce_init, pbcast_init, Pallreduce, Pbcast};
    pub use parcomm_core::{
        precv_init, prequest_create, psend_init, CopyMechanism, DevicePrequest, PrecvRequest,
        PrequestConfig, PsendRequest,
    };
    pub use parcomm_fault::FaultPlan;
    pub use parcomm_gpu::{AggLevel, Buffer, CostModel, DeviceCtx, Gpu, KernelSpec, Stream};
    pub use parcomm_mpi::{MpiError, MpiWorld, Rank, WorldConfig};
    pub use parcomm_mux::{ChannelSpec, Direction, MuxConfig, MuxService};
    pub use parcomm_nccl::{NcclComm, NcclConfig};
    pub use parcomm_net::ClusterSpec;
    pub use parcomm_recover::{Quarantine, RecoverPolicy, RecoveryReport};
    pub use parcomm_shmem::{ShmemError, SymmetricHeap};
    pub use parcomm_sim::{Ctx, Event, SimConfig, SimDuration, SimTime, Simulation};
}
