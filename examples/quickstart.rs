//! Quickstart: a GPU-initiated partitioned transfer between two GH200s on
//! one node, exercising the full life cycle of Listing 2 from the paper —
//! `Psend_init`/`Precv_init` → `Start` → `Pbuf_prepare` →
//! `Prequest_create` → in-kernel `MPIX_Pready` → `Wait` — and printing
//! where the time went.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use parcomm::prelude::*;
use parcomm_sim::Mutex;

fn main() {
    let mut sim = Simulation::with_seed(2024);
    let world = MpiWorld::gh200(&sim, 1);
    let log = Arc::new(Mutex::new(Vec::new()));
    let log2 = log.clone();

    world.run_ranks(&mut sim, move |ctx, rank| {
        const PARTITIONS: usize = 64;
        const BYTES: usize = PARTITIONS * 1024; // 1 KiB per partition
        let buf = rank.gpu().alloc_global(BYTES);
        let stream = rank.gpu().create_stream();

        match rank.rank() {
            0 => {
                // Fill the payload: partition u carries the value u+1.
                for u in 0..PARTITIONS {
                    buf.write_f64_slice(u * 1024, &[(u + 1) as f64; 128]);
                }
                let sreq = psend_init(ctx, rank, 1, 7, &buf, PARTITIONS).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(
                    ctx,
                    rank,
                    &sreq,
                    PrequestConfig {
                        copy: CopyMechanism::KernelCopy,
                        agg: AggLevel::Block,
                        transport_partitions: 1,
                        multi_block_counters: true,
                    },
                )
                .expect("same-node kernel copy");

                let t0 = ctx.now();
                // The kernel "computes" and marks every partition ready
                // from the device — no cudaStreamSynchronize anywhere.
                let preq2 = preq.clone();
                stream.launch(ctx, KernelSpec::vector_add(1, 64), move |d| {
                    preq2.pready_all(d);
                });
                sreq.wait(ctx).expect("wait");
                log2.lock().push(format!(
                    "sender: kernel + in-kernel Pready + MPI_Wait took {}",
                    ctx.now().since(t0)
                ));
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 7, &buf, PARTITIONS).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                let ok = (0..PARTITIONS)
                    .all(|u| buf.read_f64(u * 1024) == (u + 1) as f64 && rreq.parrived(u));
                log2.lock().push(format!(
                    "receiver: all {PARTITIONS} partitions arrived and verified: {ok}"
                ));
                assert!(ok);
            }
            _ => {}
        }
    });

    let report = sim.run().expect("simulation");
    for line in log.lock().iter() {
        println!("{line}");
    }
    println!(
        "simulated {} events over {} of virtual time",
        report.events_processed, report.end_time
    );
}
