//! The schedule engine is algorithm-independent (paper §IV-B1): this
//! example runs the partitioned *broadcast* built from the same
//! `(I, R, ⊕, O, A)` machinery as the allreduce — a binomial tree of NOP
//! steps — across eight GPUs on two nodes, with per-partition pipelining.
//!
//! Run with: `cargo run --example partitioned_bcast`

use std::sync::Arc;

use parcomm::prelude::*;
use parcomm_sim::Mutex;

fn main() {
    let mut sim = Simulation::with_seed(31);
    let world = MpiWorld::gh200(&sim, 2);
    let times = Arc::new(Mutex::new(Vec::new()));
    let t2 = times.clone();

    world.run_ranks(&mut sim, move |ctx, rank| {
        const PARTITIONS: usize = 8;
        const ELEMS: usize = PARTITIONS * 4096;
        let root = 0usize;
        let buf = rank.gpu().alloc_global(ELEMS * 8);
        if rank.rank() == root {
            buf.write_f64_slice(0, &(0..ELEMS).map(|i| (i % 97) as f64).collect::<Vec<_>>());
        }
        let stream = rank.gpu().create_stream();
        let bcast = pbcast_init(ctx, rank, &buf, PARTITIONS, &stream, root, 3).expect("init");

        bcast.start(ctx).expect("start");
        bcast.pbuf_prepare(ctx).expect("pbuf_prepare");
        rank.barrier(ctx);
        let t0 = ctx.now();
        for u in 0..PARTITIONS {
            bcast.pready(ctx, u).expect("pready");
        }
        bcast.wait(ctx).expect("wait");
        let elapsed = ctx.now().since(t0);

        // Every rank now holds the root's payload.
        let got = buf.read_f64_slice(0, ELEMS);
        assert!(got.iter().enumerate().all(|(i, v)| *v == (i % 97) as f64));
        t2.lock().push((rank.rank(), elapsed.as_micros_f64()));
    });

    sim.run().expect("bcast");
    let mut times = times.lock().clone();
    times.sort_by_key(|(r, _)| *r);
    println!("Partitioned binomial-tree bcast of 256 KiB over 8 GH200 (2 nodes):\n");
    for (r, us) in &times {
        println!("  rank {r}: completed in {us:>8.1} µs (payload verified)");
    }
    println!("\nno reduction op in the schedule → no in-collective stream synchronization,");
    println!("so broadcast does not pay the allreduce's NCCL gap (paper §VI-B).");
}
