//! The paper's data-parallel deep-learning proxy (§VI-D2) on four
//! simulated GH200s: a binary-cross-entropy kernel computes gradients,
//! which are synchronized with (a) traditional `MPI_Allreduce`, (b) the
//! partitioned allreduce with device-side `MPIX_Pready`, and (c) NCCL —
//! all three must agree numerically, and the per-step times reproduce the
//! ordering of Figs. 10/11.
//!
//! Run with: `cargo run --example deep_learning`

use std::sync::Arc;

use parcomm::apps::{nccl_for_world, run_dl, DlConfig, DlModel};
use parcomm::prelude::*;
use parcomm_sim::Mutex;

fn run(model: DlModel, label: &str) -> (f64, f64) {
    let mut sim = Simulation::with_seed(11);
    let world = MpiWorld::gh200(&sim, 1);
    let nccl = nccl_for_world(&world);
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let out2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let cfg = DlConfig {
            elements: 1 << 21, // 16 MiB of gradients (large-kernel regime)
            partitions: 4,
            steps: 2,
            functional: true,
            model,
        };
        let result = run_dl(ctx, rank, &cfg, Some(&nccl)).expect("run_dl");
        if rank.rank() == 0 {
            *out2.lock() = (result.per_step.as_micros_f64(), result.loss);
        }
    });
    sim.run().expect("dl run");
    let (per_step, loss) = *out.lock();
    println!("{label:<32} {per_step:>10.1} µs/step   loss proxy {loss:.6}");
    (per_step, loss)
}

fn main() {
    println!("Data-parallel BCE training step, 4 GH200, 2M gradient elements (16 MiB)\n");
    let (trad, l1) = run(DlModel::Traditional, "MPI_Allreduce (host-staged)");
    let (part, l2) = run(DlModel::Partitioned, "partitioned allreduce");
    let (nccl, l3) = run(DlModel::Nccl, "ncclAllReduce");
    assert!((l1 - l2).abs() < 1e-12 && (l2 - l3).abs() < 1e-12, "models must agree");
    println!(
        "\npartitioned is {:.1}x faster than MPI_Allreduce; NCCL leads partitioned by {:.1} µs \
         (the in-schedule reduce kernels + stream synchronizations — paper §VI-B)",
        trad / part,
        part - nccl
    );
}
