//! The paper's Jacobi application-kernel (§VI-D1) on four simulated GH200s:
//! solves the same heated-plate problem with the traditional model
//! (kernel → `cudaStreamSynchronize` → `MPI_Sendrecv`) and with
//! GPU-initiated partitioned halo exchange, verifies both against a
//! single-process reference, and reports GFLOP/s.
//!
//! Run with: `cargo run --example jacobi`

use std::sync::Arc;

use parcomm::apps::{jacobi_reference, process_grid, run_jacobi, JacobiConfig, JacobiModel};
use parcomm::prelude::*;
use parcomm_sim::Mutex;

fn run(model: JacobiModel, label: &str) -> f64 {
    let mut sim = Simulation::with_seed(7);
    let world = MpiWorld::gh200(&sim, 1);
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let out2 = out.clone();
    let sums = Arc::new(Mutex::new(0.0f64));
    let sums2 = sums.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let cfg = JacobiConfig {
            base_h: 32,
            base_w: 32,
            multiplier: 4,
            iterations: 10,
            functional: true,
            model,
            stencil_gbps: 300.0,
        };
        let result = run_jacobi(ctx, rank, &cfg).expect("run_jacobi");
        *sums2.lock() += result.checksum;
        if rank.rank() == 0 {
            *out2.lock() = (result.gflops, result.elapsed.as_micros_f64());
        }
    });
    sim.run().expect("jacobi run");
    let (gflops, us) = *out.lock();

    // Verify against the single-process reference.
    let (px, py) = process_grid(4);
    let (gh, gw) = (32 * 4 * py, 32 * 4 * px);
    let reference = jacobi_reference(gh, gw, 10);
    let pitch = gw + 2;
    let ref_sum: f64 =
        (1..=gh).map(|i| reference[i * pitch + 1..=i * pitch + gw].iter().sum::<f64>()).sum();
    let dist_sum = *sums.lock();
    assert!(
        (dist_sum - ref_sum).abs() < 1e-9,
        "{label}: distributed {dist_sum} != reference {ref_sum}"
    );

    println!("{label:<34} {gflops:>9.2} GFLOP/s   ({us:>10.1} µs, field verified)");
    gflops
}

fn main() {
    println!("2-D Jacobi, 4 GH200 (2x2), 256x256 global grid, 10 iterations\n");
    let trad = run(JacobiModel::Traditional, "traditional (sync + sendrecv)");
    let pe = run(
        JacobiModel::Partitioned(CopyMechanism::ProgressionEngine),
        "partitioned (progression engine)",
    );
    let kc = run(JacobiModel::Partitioned(CopyMechanism::KernelCopy), "partitioned (kernel copy)");
    println!("\nspeedup vs traditional: PE {:.2}x, KC {:.2}x", pe / trad, kc / trad);
}
