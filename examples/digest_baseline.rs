//! Regenerate the frozen fault-free baseline digests asserted by
//! `crates/faultsim/tests/chaos.rs` (`FROZEN_ALLREDUCE` / `FROZEN_JACOBI`).
//!
//! Those constants were captured on the build *before* the fault-injection
//! subsystem existed; `FaultPlan::none()` must keep reproducing them bit
//! for bit. Only re-run this (and update the constants) after a change
//! that intentionally alters the simulation's event stream.
use std::sync::Arc;

use parcomm::apps::{run_jacobi, JacobiConfig, JacobiModel};
use parcomm::coll::pallreduce_init;
use parcomm::gpu::KernelSpec;
use parcomm::mpi::MpiWorld;
use parcomm::prelude::*;
use parcomm::sim::Mutex;
use parcomm_testkit::digest;

fn allreduce_digest(seed: u64) -> u64 {
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    trace.enable();
    let world = MpiWorld::gh200(&sim, 1);
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let partitions = 4usize;
        let n = partitions * rank.size() * 64;
        let buf = rank.gpu().alloc_global(n * 8);
        let vals: Vec<f64> = (0..n).map(|i| (rank.rank() * 31 + i) as f64).collect();
        buf.write_f64_slice(0, &vals);
        let stream = rank.gpu().create_stream();
        let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 90).expect("init");
        coll.start(ctx).expect("start");
        coll.pbuf_prepare(ctx).expect("pbuf_prepare");
        let c2 = coll.clone();
        stream.launch(ctx, KernelSpec::vector_add(4, 256), move |d| c2.pready_device_all(d));
        coll.wait(ctx).expect("wait");
        if rank.rank() == 0 {
            *o2.lock() = buf.read_f64_slice(0, n);
        }
    });
    let report = sim.run().expect("allreduce sim");
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    d.write_f64_slice(&out.lock());
    d.finish()
}

fn jacobi_digest(seed: u64) -> u64 {
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    trace.enable();
    let world = MpiWorld::gh200(&sim, 1);
    let out = Arc::new(Mutex::new(0.0f64));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let cfg = JacobiConfig::functional_test(JacobiModel::Partitioned(
            CopyMechanism::ProgressionEngine,
        ));
        let res = run_jacobi(ctx, rank, &cfg).expect("run_jacobi");
        if rank.rank() == 0 {
            *o2.lock() = res.checksum;
        }
    });
    let report = sim.run().expect("jacobi sim");
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    d.write_f64(*out.lock());
    d.finish()
}

fn main() {
    for seed in [0xA11CE_u64, 0xB0B, 0xC0C0A, 0xFA017] {
        println!("allreduce {seed:#x} -> {:#018x}", allreduce_digest(seed));
    }
    for seed in [0xA11CE_u64, 0xFA017] {
        println!("jacobi    {seed:#x} -> {:#018x}", jacobi_digest(seed));
    }
}
