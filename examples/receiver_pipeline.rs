//! Receiver-side pipelining — the other half of the partitioned story:
//! the paper notes the receiver "can call MPI_Parrived in a parallel
//! region to check if a partition has arrived" (§II-B1). Here the
//! receiver processes each partition the moment it lands, while the
//! sender's kernel is still producing later partitions — so consumption
//! overlaps both the producer kernel and the wire.
//!
//! Run with: `cargo run --example receiver_pipeline`

use std::sync::Arc;

use parcomm::prelude::*;
use parcomm_sim::Mutex;

fn main() {
    const PARTITIONS: usize = 8;
    const ELEMS_PER_PART: usize = 64 * 1024; // 512 KiB per partition

    let mut sim = Simulation::with_seed(99);
    let world = MpiWorld::gh200(&sim, 1);
    let log = Arc::new(Mutex::new(Vec::new()));
    let log2 = log.clone();

    world.run_ranks(&mut sim, move |ctx, rank| {
        let n = PARTITIONS * ELEMS_PER_PART;
        let buf = rank.gpu().alloc_global(n * 8);
        match rank.rank() {
            0 => {
                buf.write_f64_slice(0, &vec![1.0; n]);
                let sreq = psend_init(ctx, rank, 1, 5, &buf, PARTITIONS).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(
                    ctx,
                    rank,
                    &sreq,
                    PrequestConfig {
                        transport_partitions: PARTITIONS, // one put per partition
                        ..PrequestConfig::default()
                    },
                )
                .expect("prequest");
                // Compute-heavy producer: partitions become ready in waves.
                let spec = KernelSpec::new("producer", 1024, 1024).with_flops(20_000.0);
                let stream = rank.gpu().create_stream();
                let p2 = preq.clone();
                stream.launch(ctx, spec, move |d| p2.pready_all_progressive(d));
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 5, &buf, PARTITIONS).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let t0 = ctx.now();
                let mut consumed = 0.0f64;
                for u in 0..PARTITIONS as u64 {
                    // Block only until partition u is here, then process it
                    // while the rest are still being computed/transferred.
                    rreq.wait_arrivals(ctx, u + 1).expect("wait_arrivals");
                    let arrived_at = ctx.now().since(t0);
                    let off = u as usize * ELEMS_PER_PART * 8;
                    consumed += buf.reduce_sum_f64(off, ELEMS_PER_PART);
                    // Model the per-partition consumer work.
                    ctx.advance(SimDuration::from_micros(15));
                    log2.lock().push(format!(
                        "partition {u}: arrived at +{arrived_at}, consumed (running sum {consumed})"
                    ));
                }
                rreq.wait(ctx).expect("wait");
                let total = ctx.now().since(t0);
                log2.lock().push(format!(
                    "all {PARTITIONS} partitions consumed in {total}; final sum {consumed} \
                     (expected {})",
                    n as f64
                ));
                assert_eq!(consumed, n as f64);
            }
            _ => {}
        }
    });
    sim.run().expect("simulation");
    for l in log.lock().iter() {
        println!("{l}");
    }
    println!("\nconsumption of early partitions overlapped the producer kernel —");
    println!("with one bulk receive, all processing would start only after the last byte.");
}
