//! Explore the paper's §VI-A1 question interactively: at what granularity
//! should GPU threads signal partition readiness? Sweeps thread-, warp-,
//! and block-level `MPIX_Pready` bindings plus multi-block counter
//! aggregation and prints the device-side cost of each.
//!
//! Run with: `cargo run --example aggregation_tuning`

use std::sync::Arc;

use parcomm::prelude::*;
use parcomm_sim::Mutex;

fn pready_cost(threads: u32, agg: AggLevel, multi_block: bool, grid: u32) -> f64 {
    let mut sim = Simulation::with_seed(threads as u64 ^ grid as u64);
    let world = MpiWorld::gh200(&sim, 1);
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = (grid as usize * threads as usize).max(1);
        let buf = rank.gpu().alloc_global(parts * 8);
        let stream = rank.gpu().create_stream();
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, 5, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(
                    ctx,
                    rank,
                    &sreq,
                    PrequestConfig {
                        copy: CopyMechanism::ProgressionEngine,
                        agg,
                        transport_partitions: 1,
                        multi_block_counters: multi_block,
                    },
                )
                .expect("prequest");
                let plain = stream.launch(ctx, KernelSpec::vector_add(grid, threads), |_| {});
                ctx.wait(&plain.done);
                let preq2 = preq.clone();
                let with = stream.launch(ctx, KernelSpec::vector_add(grid, threads), move |d| {
                    preq2.pready_all(d)
                });
                ctx.wait(&with.done);
                sreq.wait(ctx).expect("wait");
                *out2.lock() =
                    with.duration().as_micros_f64() - plain.duration().as_micros_f64();
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 5, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
            }
            _ => {}
        }
    });
    sim.run().expect("sweep point");
    let v = *out.lock();
    v
}

fn main() {
    println!("Device-side MPIX_Pready cost (µs) by aggregation level, 1 block:\n");
    println!("{:>8} {:>12} {:>12} {:>12}", "threads", "thread", "warp", "block");
    for threads in [1u32, 32, 128, 512, 1024] {
        let t = pready_cost(threads, AggLevel::Thread, false, 1);
        let w = pready_cost(threads, AggLevel::Warp, false, 1);
        let b = pready_cost(threads, AggLevel::Block, false, 1);
        println!("{threads:>8} {t:>12.2} {w:>12.2} {b:>12.2}");
    }
    let t1024 = pready_cost(1024, AggLevel::Thread, false, 1);
    let b1024 = pready_cost(1024, AggLevel::Block, false, 1);
    println!(
        "\nfully occupied block: thread-level costs {:.0}x block-level (paper: 271.5x)\n",
        t1024 / b1024
    );

    println!("Multi-block aggregation with GPU-global counters (block level, 1024 threads):\n");
    println!("{:>8} {:>16} {:>16}", "blocks", "per-block writes", "counter agg");
    for grid in [2u32, 8, 32, 128] {
        let plain = pready_cost(1024, AggLevel::Block, false, grid);
        let counters = pready_cost(1024, AggLevel::Block, true, grid);
        println!("{grid:>8} {plain:>16.2} {counters:>16.2}");
    }
    println!(
        "\ncounters collapse many block notifications into one host write per transport \
         partition — the paper's recommendation that threads call MPIX_Pready for \
         programmability while MPI aggregates internally."
    );
}
